//! Compiled execution plans: tune once, run many.
//!
//! Binning, feature extraction, and strategy selection are all
//! per-*pattern* work — they depend only on the sparsity structure, not
//! the stored values. Iterative consumers (CG, PageRank, time-stepping)
//! run SpMV hundreds of times on one pattern, so [`SpmvPlan`] freezes
//! that work at compile time: the predicted [`Strategy`], the extracted
//! [`MatrixFeatures`], the expanded per-bin row lists, and the backend to
//! launch on. [`SpmvPlan::execute`] then does *no* binning, feature
//! extraction, or row-list allocation — it walks the dispatch table and
//! launches.
//!
//! A [`PatternFingerprint`] guards reuse: executing a plan against a
//! matrix with a different structure is a typed [`PlanError`], never a
//! silently wrong result. Value-only updates (same pattern, new numbers)
//! are the intended use and need no recompilation.

use crate::binning::{bin_matrix, Bins};
use crate::exec::{ExecBackend, LaunchCost, PlanParts};
use crate::kernels::cpu::rows_nnz_cuts;
use crate::kernels::table::{self, KernelFamily, KernelKey};
use crate::kernels::KernelId;
use crate::strategy::Strategy;
use crate::telemetry::PlanTelemetry;
use crate::verify::{check_dispatch, check_payloads, check_shards, VerifyError};
use spmv_parallel::Placement;
use spmv_sparse::{
    BandSet, ColumnLocality, CsrMatrix, DenseBlock, DenseRuns, FeatureSet, IndexKind,
    MatrixFeatures, PackedSell, RowRuns, Scalar,
};
use std::sync::atomic::{AtomicBool, Ordering};

/// Structural identity of a CSR matrix: dimensions, NNZ, and an FNV-1a
/// checksum of the row-pointer array. Two matrices with equal
/// fingerprints have the same row lengths everywhere, which is exactly
/// the information binning consumed.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct PatternFingerprint {
    /// Rows.
    pub m: usize,
    /// Columns.
    pub n: usize,
    /// Stored non-zeros.
    pub nnz: usize,
    /// FNV-1a over the row-pointer array.
    pub row_ptr_hash: u64,
}

impl PatternFingerprint {
    /// Fingerprint `a`'s sparsity structure. O(m), allocation-free.
    pub fn of<T: Scalar>(a: &CsrMatrix<T>) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for &p in a.row_ptr() {
            h ^= p as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        Self {
            m: a.n_rows(),
            n: a.n_cols(),
            nnz: a.nnz(),
            row_ptr_hash: h,
        }
    }

    /// A second, independent row-pointer checksum ([`confirm_row_ptr`])
    /// for `a` — what a cache layer stores next to a fingerprinted entry
    /// so a hit can be confirmed without trusting FNV-1a alone.
    pub fn confirm_of<T: Scalar>(a: &CsrMatrix<T>) -> u64 {
        confirm_row_ptr(a.row_ptr())
    }
}

/// Position-mixed SplitMix64 checksum over a row-pointer array: each
/// element is finalized together with its index, and the results are
/// combined with wrapping addition. Structurally unrelated to the FNV-1a
/// multiply-xor chain in [`PatternFingerprint::of`], so an adversarially
/// forged (or astronomically unlucky) FNV collision does not also
/// collide here — the confirmation a plan cache performs before reusing
/// an entry whose fingerprint matched. O(m), allocation-free.
pub fn confirm_row_ptr(row_ptr: &[usize]) -> u64 {
    let mut acc: u64 = 0;
    for (i, &p) in row_ptr.iter().enumerate() {
        let mut z = (p as u64) ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        acc = acc.wrapping_add(z ^ (z >> 31));
    }
    acc
}

/// Why a plan refused to execute.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PlanError {
    /// The matrix handed to [`SpmvPlan::execute`] has a different
    /// sparsity structure than the one the plan was compiled for.
    PatternMismatch {
        /// Fingerprint the plan was compiled against.
        expected: PatternFingerprint,
        /// Fingerprint of the matrix handed to `execute`.
        got: PatternFingerprint,
    },
    /// An input or output vector has the wrong length.
    DimensionMismatch {
        /// Which slice was wrong (`"input vector"` / `"output vector"`).
        what: &'static str,
        /// Length the plan requires.
        expected: usize,
        /// Length received.
        got: usize,
    },
}

impl std::fmt::Display for PlanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlanError::PatternMismatch { expected, got } => write!(
                f,
                "plan compiled for pattern {}x{}/{} nnz (hash {:#x}) executed \
                 against {}x{}/{} nnz (hash {:#x}); recompile the plan for \
                 structurally different matrices",
                expected.m,
                expected.n,
                expected.nnz,
                expected.row_ptr_hash,
                got.m,
                got.n,
                got.nnz,
                got.row_ptr_hash,
            ),
            PlanError::DimensionMismatch {
                what,
                expected,
                got,
            } => {
                write!(f, "{what}: expected length {expected}, got {got}")
            }
        }
    }
}

impl std::error::Error for PlanError {}

/// Storage format compilation chose for one bin — the per-bin decision
/// the plan records (and [`check_payloads`] proves consistent with the
/// materialised payload).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BinFormat {
    /// Generic CSR traversal over the bin's row list — the fallback for
    /// dense/tail bins and for bins whose SELL padding would blow the
    /// [`PlanConfig::max_padding`] bound.
    Csr,
    /// SELL-style packed slabs ([`PackedSell`]) with the given lane
    /// count, for low/mid-NNZ bins where per-row loop overhead dominates.
    /// `index` is the *realised* column-index width: the narrowest delta
    /// lane the pack-time span proof admitted (never narrower than the
    /// [`PlanConfig::index`] policy floor).
    PackedSell {
        /// Lanes per chunk (`C`).
        chunk: usize,
        /// Realised delta-compressed column-index width.
        index: IndexKind,
    },
    /// CSR traversal with column-blocked (cache-blocked) execution on the
    /// fused native path: the gather vector `x` is tiled into vertical
    /// strips of `strip_cols` columns and each row's cursor pauses at
    /// strip boundaries, carrying its partial sum across strips. Chosen
    /// for scatter-heavy CSR-fallback bins whose working set of `x`
    /// exceeds L2. Entries are still consumed in exact CSR storage order,
    /// so results are bit-for-bit identical to [`BinFormat::Csr`].
    CacheBlockedCsr {
        /// Columns per vertical strip of `x`.
        strip_cols: usize,
    },
    /// Structure fast path: every row of the bin decomposes into long
    /// contiguous column runs ([`spmv_sparse::DenseRuns`]), so execution
    /// is strided dense AXPYs with no per-element index gathers.
    DenseRun,
    /// Structure fast path: the bin is band-complete over a fixed small
    /// set of diagonal offsets ([`spmv_sparse::BandSet`]) — execution
    /// iterates the offset list with zero index traffic.
    Banded {
        /// Number of distinct diagonal offsets.
        offsets: usize,
    },
    /// Structure fast path building on PR 5's run-aligned chunks: runs
    /// of identical-pattern rows ([`spmv_sparse::RowRuns`]) load their
    /// shared column list once per run instead of once per row.
    RowRunReuse,
}

impl std::fmt::Display for BinFormat {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BinFormat::Csr => write!(f, "csr"),
            BinFormat::PackedSell { chunk, index } => write!(f, "sell-{chunk}-{index}"),
            BinFormat::CacheBlockedCsr { strip_cols } => write!(f, "blocked-csr-{strip_cols}"),
            BinFormat::DenseRun => write!(f, "dense-run"),
            BinFormat::Banded { offsets } => write!(f, "banded-{offsets}"),
            BinFormat::RowRunReuse => write!(f, "row-run"),
        }
    }
}

impl BinFormat {
    /// The kernel-table family this format executes with — the index
    /// plan compilation uses to assert registry coverage (see
    /// [`crate::kernels::table`]). Cache-blocked bins map to the CSR
    /// family: the strip schedule is a single-vector scheduling overlay,
    /// not a different kernel body.
    pub fn kernel_family(self) -> KernelFamily {
        match self {
            BinFormat::Csr | BinFormat::CacheBlockedCsr { .. } => KernelFamily::Csr,
            BinFormat::PackedSell { .. } => KernelFamily::Packed,
            BinFormat::DenseRun => KernelFamily::DenseRun,
            BinFormat::Banded { .. } => KernelFamily::Banded,
            BinFormat::RowRunReuse => KernelFamily::RowRun,
        }
    }
}

/// The execution payload materialised for one bin, aligned index-for-index
/// with the plan's dispatch table.
// Plans hold one payload per bin (single digits), so the size spread
// against the unit variants is noise next to the slab heap a `Packed`
// owns; boxing would only add a pointer chase on the execute path.
#[allow(clippy::large_enum_variant)]
#[derive(Debug)]
pub enum BinPayload<T: Scalar> {
    /// No extra payload — execute walks the dispatch entry's row list
    /// through the CSR arrays.
    Csr,
    /// A packed SELL slab built from the bin's rows at compile time.
    Packed(PackedSell<T>),
    /// No extra storage, but the fused native executor walks the bin's
    /// rows strip-by-strip with per-row partial sums (see
    /// [`BinFormat::CacheBlockedCsr`]). Backends without a blocked
    /// executor treat this exactly like [`BinPayload::Csr`] — the
    /// blocking is a schedule, not a semantic change.
    Blocked {
        /// Columns per vertical strip of `x`.
        strip_cols: usize,
    },
    /// The proven contiguous-run decomposition of the bin's rows
    /// (see [`BinFormat::DenseRun`]).
    DenseRun(DenseRuns),
    /// The proven diagonal-offset set of the bin (see
    /// [`BinFormat::Banded`]).
    Banded(BandSet),
    /// The proven identical-row-run boundaries of the bin (see
    /// [`BinFormat::RowRunReuse`]).
    RowRun(RowRuns),
}

/// One unit of the fused dispatch queue: a contiguous slice of one bin's
/// work. For a [`BinFormat::PackedSell`] bin, `start..end` is a chunk
/// range of its slab; for a [`BinFormat::Csr`] bin it is a span of the
/// dispatch entry's row list (cut NNZ-balanced at compile time — the
/// hoisted form of the cuts the per-launch path recomputes). Tiles of one
/// bin partition that bin's work, so any queue execution order writes
/// disjoint rows.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Tile {
    /// Index into the plan's dispatch/payload tables.
    pub bin: usize,
    /// First chunk (packed) or first row-list position (CSR), inclusive.
    pub start: usize,
    /// Last chunk / row-list position, exclusive.
    pub end: usize,
}

/// Visit every output row a tile writes, in the tile's own traversal
/// order: packed tiles own the slab rows of their chunk range, CSR and
/// blocked tiles own their span of the dispatch row list. This is the
/// write-set enumeration both the shard builder and the shard-partition
/// prover walk.
pub(crate) fn for_each_tile_row<T: Scalar>(
    dispatch: &[BinDispatch],
    payloads: &[BinPayload<T>],
    tile: &Tile,
    mut f: impl FnMut(u32),
) {
    match &payloads[tile.bin] {
        BinPayload::Packed(packed) => {
            let c = packed.chunk();
            let rows = packed.rows();
            let start = (tile.start * c).min(rows.len());
            let end = (tile.end * c).min(rows.len());
            for &r in &rows[start..end] {
                f(r);
            }
        }
        // Specialized bins tile over row-list positions exactly like CSR
        // bins — their payloads index the bin's row list, never reorder
        // it.
        BinPayload::Csr
        | BinPayload::Blocked { .. }
        | BinPayload::DenseRun(_)
        | BinPayload::Banded(_)
        | BinPayload::RowRun(_) => {
            for &r in &dispatch[tile.bin].rows[tile.start..tile.end] {
                f(r);
            }
        }
    }
}

/// Compile-time shard partition of the fused tile queue: the data side of
/// the topology-aware runtime (`spmv_parallel::topology` names the
/// worker side).
///
/// The LPT-ordered queue is dealt greedily onto `n_shards` sub-queues —
/// each tile goes to the currently lightest shard, so the cuts are
/// NNZ-balanced (greedy LPT is within 4/3 of optimal makespan). Because
/// tiles own disjoint row spans, the deal also partitions the **output
/// rows**: `shard_rows[s]` is exactly the set of `y` indices shard `s`'s
/// workers will write, and `x_ranges[s]` is the column window those rows
/// gather from — the shard's streamed working set. Both are what the
/// executor first-touches from the owning worker before the first drain,
/// and what [`check_shards`] proves disjoint/covering before a plan is
/// promoted to [`VerifiedPlan`].
#[derive(Debug)]
pub struct ShardedTiles {
    /// Per-shard tile-id queues (ids into the plan's tile table), each in
    /// descending-weight order.
    queues: Vec<Vec<u32>>,
    /// Per-shard output rows — the union of the queue's tile write sets,
    /// in queue traversal order.
    shard_rows: Vec<Vec<u32>>,
    /// Per-shard half-open column window `[lo, hi)` covering every column
    /// the shard's rows gather; `(0, 0)` for an empty shard.
    x_ranges: Vec<(u32, u32)>,
    /// Whether a first-touch pass has run for this plan (set by the first
    /// execution; placement is per-buffer-page, so once is enough).
    touched: AtomicBool,
}

impl ShardedTiles {
    /// Deal the LPT tile queue onto `n_shards` NNZ-balanced sub-queues
    /// and derive each shard's output-row and `x`-window working sets.
    pub(crate) fn build<T: Scalar>(
        a: &CsrMatrix<T>,
        dispatch: &[BinDispatch],
        payloads: &[BinPayload<T>],
        tiles: &[Tile],
        tile_weights: &[usize],
        n_shards: usize,
    ) -> Self {
        let n_shards = n_shards.max(1);
        let mut queues = vec![Vec::new(); n_shards];
        let mut loads = vec![0usize; n_shards];
        for t in 0..tiles.len() {
            // Tiles arrive heaviest-first (build_tiles sorts them), so
            // the greedy lightest-shard assignment is exactly LPT. Ties
            // take the lowest shard id — deterministic cuts.
            let s = (0..n_shards).min_by_key(|&s| loads[s]).unwrap_or(0);
            queues[s].push(t as u32);
            loads[s] += tile_weights.get(t).copied().unwrap_or(0).max(1);
        }
        let mut shard_rows: Vec<Vec<u32>> = vec![Vec::new(); n_shards];
        let mut x_ranges = Vec::with_capacity(n_shards);
        for (s, queue) in queues.iter().enumerate() {
            for &t in queue {
                let rows = &mut shard_rows[s];
                for_each_tile_row(dispatch, payloads, &tiles[t as usize], |r| rows.push(r));
            }
            let mut lo = u32::MAX;
            let mut hi = 0u32;
            for &r in &shard_rows[s] {
                // Full column scan — rows are not guaranteed sorted, and
                // compile already walks every non-zero once.
                let (cols, _) = a.row(r as usize);
                for &c in cols {
                    lo = lo.min(c);
                    hi = hi.max(c + 1);
                }
            }
            x_ranges.push(if lo == u32::MAX { (0, 0) } else { (lo, hi) });
        }
        Self {
            queues,
            shard_rows,
            x_ranges,
            touched: AtomicBool::new(false),
        }
    }

    /// Number of shards (≥ 1).
    pub fn n_shards(&self) -> usize {
        self.queues.len()
    }

    /// Per-shard tile-id queues, each in descending-weight order.
    pub fn queues(&self) -> &[Vec<u32>] {
        &self.queues
    }

    /// Per-shard output rows (the shard's proven write set).
    pub fn shard_rows(&self) -> &[Vec<u32>] {
        &self.shard_rows
    }

    /// Per-shard half-open `x` column windows.
    pub fn x_ranges(&self) -> &[(u32, u32)] {
        &self.x_ranges
    }

    /// Claim the one-shot first-touch pass: `true` exactly once per plan
    /// (the caller that wins runs the touch phase).
    pub fn begin_first_touch(&self) -> bool {
        !self.touched.swap(true, Ordering::AcqRel)
    }
}

/// Decompose a batch width `K` into the register-blocked RHS widths the
/// batched kernels are compiled for: greedy `(start, width)` blocks of
/// width 8, then one of 4, 2, 1 for the remainder (e.g. `K = 7` →
/// `[(0, 4), (4, 2), (6, 1)]`). The blocks partition `[0, K)` in order —
/// [`crate::verify::check_payloads`] proves that invariant for a sweep
/// of widths, because the batched executor's write-set argument tiles
/// the output as (row range × RHS block). Width 8 is the cap: the
/// per-lane kernels keep exactly `width` accumulators plus the broadcast
/// element live, and wider blocks spill out of registers (see DESIGN.md
/// §8).
pub fn rhs_blocks(k: usize) -> Vec<(usize, usize)> {
    let mut blocks = Vec::new();
    let mut start = 0usize;
    while k - start >= 8 {
        blocks.push((start, 8));
        start += 8;
    }
    for width in [4usize, 2, 1] {
        if k - start >= width {
            blocks.push((start, width));
            start += width;
        }
    }
    debug_assert_eq!(start, k);
    blocks
}

/// Column-index width policy for packed bins: how narrow the base+delta
/// lanes may go. The realised width is always the *widest* of the policy
/// floor and what the pack-time span proof requires.
///
/// `Auto` is the bottleneck-aware setting: it floors at `u8` (narrowest
/// proven width per chunk) only when the matrix's streamed working set
/// outgrows [`PlanConfig::llc_bytes`]. A cache-resident operand set
/// re-reads its index stream from cache, so delta decode would add
/// per-non-zero work without saving any memory traffic — the gate keeps
/// full `u32` words there. `Fixed(IndexKind::U8)` forces compression
/// unconditionally (bandwidth studies, machines whose cache budget the
/// default misjudges); `Fixed(IndexKind::U32)` reproduces the
/// uncompressed PR 3 layout exactly (every delta stored in a full word).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum IndexPolicy {
    /// Narrowest proven width when the working set streams from memory,
    /// full words when it is cache-resident (the default).
    Auto,
    /// Floor the width at the given kind, bypassing the bottleneck gate
    /// (benchmark baselines, A/B runs).
    Fixed(IndexKind),
}

impl IndexPolicy {
    /// The width floor this policy imposes before the bottleneck gate
    /// (the narrowest width a bin may ever realise under it).
    pub fn floor(self) -> IndexKind {
        match self {
            IndexPolicy::Auto => IndexKind::U8,
            IndexPolicy::Fixed(k) => k,
        }
    }
}

/// Knobs for plan compilation's format and dispatch decisions. The
/// defaults are what [`SpmvPlan::compile`] uses; benches and tests use
/// [`SpmvPlan::compile_with`] to pin specific corners (packing off,
/// fusion off, adversarial padding bounds, forced index widths, tiny
/// `l2_bytes` to trigger cache blocking on small matrices).
#[derive(Clone, Copy, Debug)]
pub struct PlanConfig {
    /// Consider SELL packing at all (`false` forces CSR everywhere).
    pub pack: bool,
    /// Lanes per chunk; `0` picks per bin from the row-length spread:
    /// the widest of {8, 4, 2} (max 4 for bins under 8 rows) whose
    /// realised padding is tight, else the least-padded candidate.
    pub chunk: usize,
    /// Maximum `slots / nnz` storage blow-up a packed bin may have;
    /// above it the bin falls back to CSR (the padding-overflow gate).
    pub max_padding: f64,
    /// Bins containing a row longer than this stay CSR — long rows
    /// neither suffer per-row overhead nor pack well.
    pub max_row_nnz: usize,
    /// Execute through the single-scope fused tile queue (`false` keeps
    /// one backend launch per bin).
    pub fused: bool,
    /// Target non-zeros per tile; `0` sizes tiles so each worker sees
    /// several per launch (min 4096 so tiny matrices stay one tile).
    pub tile_nnz: usize,
    /// Column-index width floor for packed bins (default
    /// [`IndexPolicy::Auto`]: narrowest proven width per bin).
    pub index: IndexPolicy,
    /// Consider column-blocked execution for scatter-heavy CSR-fallback
    /// bins (`false` keeps plain CSR traversal).
    pub cache_block: bool,
    /// Cache-blocking working-set budget in bytes: blocking only fires
    /// when `x` outgrows this, and the strip width is sized so one strip
    /// of `x` fits within it (an L2-capacity stand-in).
    pub l2_bytes: usize,
    /// Bottleneck-classifier threshold: a CSR-fallback bin is treated as
    /// scatter-heavy (latency-bound) when its rows touch at least this
    /// many distinct cache lines of `x` on average.
    pub scatter_lines_per_row: f64,
    /// Width-gate working-set budget in bytes (a last-level-cache
    /// stand-in): under [`IndexPolicy::Auto`], packed bins realise
    /// compressed index lanes only when the matrix's streamed bytes
    /// (values, `u32` indices, and the dense vectors) exceed this.
    /// Smaller operand sets are cache-resident, where narrower lanes
    /// save no DRAM traffic but still pay their decode cost.
    pub llc_bytes: usize,
    /// Shard count for the fused tile queue: `0` resolves the process
    /// placement (`SPMV_PLACEMENT` / the `SPMV_THREADS` alias, default
    /// flat → one shard), `1` pins the plan unsharded, `n > 1` cuts the
    /// queue into `n` NNZ-balanced sub-queues with per-shard row/`x`
    /// working sets (see [`ShardedTiles`]).
    pub shards: usize,
    /// Probe the structure fast paths ([`BinFormat::Banded`],
    /// [`BinFormat::DenseRun`], [`BinFormat::RowRunReuse`]) at all
    /// (`false` restricts the gate to the PR 5 format tiers — the knob
    /// benches use to pin the compressed baseline).
    pub specialize: bool,
    /// Banded fast-path budget: a bin qualifies only when its entries
    /// sit on at most this many distinct diagonal offsets (`0` disables
    /// the banded probe).
    pub band_max_offsets: usize,
    /// Dense-run fast-path threshold: a bin qualifies only when its
    /// average contiguous column-run length reaches this (`0` disables
    /// the dense-run probe).
    pub min_dense_run: usize,
    /// Row-run-reuse threshold: a bin qualifies only when its average
    /// identical-pattern run length reaches this (`0` disables the
    /// row-run probe).
    pub min_row_run: usize,
}

impl Default for PlanConfig {
    fn default() -> Self {
        Self {
            pack: true,
            chunk: 0,
            max_padding: 1.25,
            max_row_nnz: 512,
            fused: true,
            tile_nnz: 0,
            index: IndexPolicy::Auto,
            cache_block: true,
            l2_bytes: 256 * 1024,
            scatter_lines_per_row: 4.0,
            llc_bytes: 32 * 1024 * 1024,
            shards: 0,
            specialize: true,
            band_max_offsets: 16,
            min_dense_run: 8,
            min_row_run: 4,
        }
    }
}

/// A hashable identity for a [`PlanConfig`] — the second half of a plan
/// cache key (the first being the [`PatternFingerprint`]). `PlanConfig`
/// itself carries `f64` thresholds, so it cannot be `Eq`/`Hash`; the key
/// freezes those fields through [`f64::to_bits`], which is exactly the
/// right equivalence for caching: two configs compile identical plans
/// iff every knob — including the float gates, bit-for-bit — agrees.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct PlanConfigKey {
    flags: [bool; 4],
    sizes: [usize; 9],
    floats: [u64; 2],
    /// `IndexPolicy` discriminant: 0 = `Auto`, else 1 + byte width.
    index: u8,
}

impl PlanConfig {
    /// The cache identity of this configuration (see [`PlanConfigKey`]).
    pub fn cache_key(&self) -> PlanConfigKey {
        PlanConfigKey {
            flags: [self.pack, self.fused, self.cache_block, self.specialize],
            sizes: [
                self.chunk,
                self.max_row_nnz,
                self.tile_nnz,
                self.l2_bytes,
                self.llc_bytes,
                self.shards,
                self.band_max_offsets,
                self.min_dense_run,
                self.min_row_run,
            ],
            floats: [
                self.max_padding.to_bits(),
                self.scatter_lines_per_row.to_bits(),
            ],
            index: match self.index {
                IndexPolicy::Auto => 0,
                IndexPolicy::Fixed(k) => 1 + k.bytes() as u8,
            },
        }
    }
}

/// Bytes one execution of a plan must move from memory, broken down by
/// payload stream — the observability counterpart of the format gate.
/// Packed bins charge their realised slot count (padding included) at
/// each chunk's compressed index width plus the `u32` anchor table (one
/// base per chunk, or one per dense column position for column-anchored
/// chunks); CSR and blocked bins charge `nnz × 4` index bytes. `x_gather_bytes` is the
/// cache-line-granular estimate of gather traffic derived from the
/// matrix's measured distinct-lines-per-row feature — an estimate of
/// compulsory misses, not a bound (reuse across rows may reduce it,
/// capacity misses may raise it).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TrafficStats {
    /// Matrix value bytes (packed slabs charge padding slots too).
    pub value_bytes: usize,
    /// Column-index bytes (delta lanes + anchor tables for packed bins).
    pub index_bytes: usize,
    /// Estimated `x` gather traffic at cache-line granularity.
    pub x_gather_bytes: usize,
    /// Non-zeros covered (denominator for the per-NNZ views).
    pub nnz: usize,
}

impl TrafficStats {
    /// Index bytes moved per non-zero (the tentpole's headline metric).
    pub fn index_bytes_per_nnz(&self) -> f64 {
        self.index_bytes as f64 / (self.nnz as f64).max(1.0)
    }

    /// Value bytes moved per non-zero.
    pub fn value_bytes_per_nnz(&self) -> f64 {
        self.value_bytes as f64 / (self.nnz as f64).max(1.0)
    }

    /// Total matrix + estimated gather bytes per non-zero.
    pub fn total_bytes_per_nnz(&self) -> f64 {
        (self.value_bytes + self.index_bytes + self.x_gather_bytes) as f64
            / (self.nnz as f64).max(1.0)
    }
}

/// One entry of a plan's dispatch table: a populated bin with its row
/// list pre-expanded and its kernel already chosen.
#[derive(Clone, Debug)]
pub struct BinDispatch {
    /// Bin id under the plan's binning scheme.
    pub bin_id: usize,
    /// Kernel the strategy assigns this bin.
    pub kernel: KernelId,
    /// The actual row indices, expanded once at compile time.
    pub rows: Vec<u32>,
    /// Non-zeros covered by the bin.
    pub nnz: usize,
    /// Storage format compilation chose for the bin.
    pub format: BinFormat,
}

/// Expand every populated bin of `bins` into `(bin_id, rows, nnz)`
/// triples — the one place row lists are materialised; plans and the
/// tuner both build on it so the work happens once per pattern.
pub(crate) fn expand_populated<T: Scalar>(
    a: &CsrMatrix<T>,
    bins: &Bins,
) -> Vec<(usize, Vec<u32>, usize)> {
    (0..bins.bins.len())
        .filter(|&b| !bins.bins[b].is_empty())
        .map(|b| {
            let rows = bins.expand(b);
            let nnz = rows.iter().map(|&r| a.row_nnz(r as usize)).sum();
            (b, rows, nnz)
        })
        .collect()
}

/// A compiled SpMV: frozen strategy, features, fingerprint, dispatch
/// table, and backend. Build with [`SpmvPlan::compile`] (or
/// [`crate::framework::AutoSpmv::plan`]), then call
/// [`execute`](SpmvPlan::execute) as many times as the solver needs.
pub struct SpmvPlan<T: Scalar> {
    strategy: Strategy,
    features: MatrixFeatures,
    fingerprint: PatternFingerprint,
    dispatch: Vec<BinDispatch>,
    payloads: Vec<BinPayload<T>>,
    tiles: Vec<Tile>,
    tile_weights: Vec<usize>,
    shards: Option<ShardedTiles>,
    config: PlanConfig,
    backend: Box<dyn ExecBackend<T>>,
    /// Lock-free measured-feedback counters (EWMA ns/column, effective
    /// rate, static shard imbalance) updated by every execute path —
    /// the observation side of the online bottleneck classifier.
    telemetry: PlanTelemetry,
}

// Compile-time `Send + Sync` proofs: plans, proof tokens, and shard
// structures cross thread boundaries in a multi-tenant runtime, so
// thread safety is part of their contract — adding a `!Sync` field
// (an `Rc`, a bare `Cell`) must fail to compile, not fail at a caller.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<SpmvPlan<f32>>();
    assert_send_sync::<SpmvPlan<f64>>();
    assert_send_sync::<VerifiedPlan<f32>>();
    assert_send_sync::<VerifiedPlan<f64>>();
    assert_send_sync::<ShardedTiles>();
};

impl<T: Scalar> SpmvPlan<T> {
    /// Compile `strategy` for `a` on `backend` with the default
    /// [`PlanConfig`]: extract features, bin, expand every populated
    /// bin's row list, freeze the kernel choice per bin, materialise a
    /// packed payload where the format gate allows, and precompute the
    /// fused tile queue.
    pub fn compile(a: &CsrMatrix<T>, strategy: Strategy, backend: Box<dyn ExecBackend<T>>) -> Self {
        Self::compile_with(a, strategy, backend, PlanConfig::default())
    }

    /// [`compile`](Self::compile) with explicit format/dispatch knobs.
    pub fn compile_with(
        a: &CsrMatrix<T>,
        strategy: Strategy,
        backend: Box<dyn ExecBackend<T>>,
        config: PlanConfig,
    ) -> Self {
        let features = MatrixFeatures::extract(a, FeatureSet::TableI);
        let fingerprint = PatternFingerprint::of(a);
        let bins = bin_matrix(a, strategy.binning);
        let mut dispatch = Vec::new();
        let mut payloads = Vec::new();
        for (bin_id, rows, nnz) in expand_populated(a, &bins) {
            let (format, payload) = choose_format(a, &rows, &config);
            // Plan compilation indexes the generated kernel table rather
            // than open-coding dispatch: every format the gate can emit
            // must resolve at every register-blocked RHS width, or the
            // plan is unexecutable and compilation must fail loudly.
            let family = format.kernel_family();
            for kb in table::RHS_WIDTHS {
                assert!(
                    table::lookup::<T>(KernelKey { family, kb }).is_some(),
                    "kernel table has no entry for {family}×{kb} (bin {bin_id}, format {format})"
                );
            }
            dispatch.push(BinDispatch {
                bin_id,
                kernel: strategy.kernel_for(bin_id),
                rows,
                nnz,
                format,
            });
            payloads.push(payload);
        }
        let (tiles, tile_weights) = if config.fused {
            build_tiles(a, &dispatch, &payloads, &config)
        } else {
            (Vec::new(), Vec::new())
        };
        // Shard the tile queue when the placement (or an explicit config
        // override) asks for more than one shard. An unsharded plan
        // carries `None` and executes exactly as before.
        let n_shards = match config.shards {
            0 => Placement::from_env().shards,
            n => n,
        };
        let shards = if n_shards > 1 && !tiles.is_empty() {
            Some(ShardedTiles::build(
                a,
                &dispatch,
                &payloads,
                &tiles,
                &tile_weights,
                n_shards,
            ))
        } else {
            None
        };
        // Freeze the telemetry constants now: the modelled traffic and the
        // shard deal's static imbalance never change after compilation, so
        // the execute paths only ever touch the atomic counters.
        let shard_loads: Vec<usize> = shards
            .as_ref()
            .map(|s| {
                s.queues()
                    .iter()
                    .map(|q| {
                        q.iter()
                            .map(|&t| tile_weights.get(t as usize).copied().unwrap_or(0))
                            .sum()
                    })
                    .collect()
            })
            .unwrap_or_default();
        let traffic = traffic_of(
            &dispatch,
            &payloads,
            features.avg_lines_per_row,
            fingerprint.m,
        );
        let telemetry = PlanTelemetry::new(a.nnz(), &traffic, &shard_loads);
        Self {
            strategy,
            features,
            fingerprint,
            dispatch,
            payloads,
            tiles,
            tile_weights,
            shards,
            config,
            backend,
            telemetry,
        }
    }

    /// Execute the plan: one backend launch per dispatch entry.
    ///
    /// Validates dimensions and the pattern fingerprint (O(m) scan, no
    /// allocation), then launches over the cached row lists. Value-only
    /// updates to `a` since compilation are fine; structural changes are
    /// a [`PlanError::PatternMismatch`].
    pub fn execute(&self, a: &CsrMatrix<T>, v: &[T], u: &mut [T]) -> Result<LaunchCost, PlanError> {
        if v.len() != self.fingerprint.n {
            return Err(PlanError::DimensionMismatch {
                what: "input vector",
                expected: self.fingerprint.n,
                got: v.len(),
            });
        }
        if u.len() != self.fingerprint.m {
            return Err(PlanError::DimensionMismatch {
                what: "output vector",
                expected: self.fingerprint.m,
                got: u.len(),
            });
        }
        let got = PatternFingerprint::of(a);
        if got != self.fingerprint {
            return Err(PlanError::PatternMismatch {
                expected: self.fingerprint,
                got,
            });
        }
        Ok(self.launch_all(a, v, u))
    }

    /// Borrow the compiled tables as one bundle for the backend.
    fn parts(&self) -> PlanParts<'_, T> {
        PlanParts {
            dispatch: &self.dispatch,
            payloads: &self.payloads,
            tiles: &self.tiles,
            tile_weights: &self.tile_weights,
            shards: self.shards.as_ref(),
        }
    }

    /// Hand the whole compiled dispatch — table, payloads, tile queue,
    /// shard partition — to the backend. All validation happens in the
    /// callers.
    fn launch_all(&self, a: &CsrMatrix<T>, v: &[T], u: &mut [T]) -> LaunchCost {
        let cost = self.backend.launch_plan(a, &self.parts(), v, u);
        // Feed the wall time the backend already measured into the
        // telemetry EWMA: no extra clock read on the hot path.
        self.telemetry.record(cost.wall.as_nanos() as u64, 1);
        cost
    }

    /// Batched execute: `y = A · x` for every column of `x` in one
    /// matrix traversal per RHS block (SpMM). `x` is `n × K`, `y` is
    /// `m × K`; each output column is bit-for-bit identical to a
    /// single-vector [`execute`](Self::execute) against that input
    /// column. `K = 0` is a no-op. Validation mirrors `execute`:
    /// dimensions, block widths, then the O(m) fingerprint scan.
    pub fn execute_batch(
        &self,
        a: &CsrMatrix<T>,
        x: &DenseBlock<T>,
        y: &mut DenseBlock<T>,
    ) -> Result<LaunchCost, PlanError> {
        self.check_batch_dims(x, y)?;
        let got = PatternFingerprint::of(a);
        if got != self.fingerprint {
            return Err(PlanError::PatternMismatch {
                expected: self.fingerprint,
                got,
            });
        }
        Ok(self.launch_all_batch(a, x, y))
    }

    /// Block-shape validation shared by the checked and verified batched
    /// paths: O(1), no allocation.
    fn check_batch_dims(&self, x: &DenseBlock<T>, y: &DenseBlock<T>) -> Result<(), PlanError> {
        if x.n_rows() != self.fingerprint.n {
            return Err(PlanError::DimensionMismatch {
                what: "input block rows",
                expected: self.fingerprint.n,
                got: x.n_rows(),
            });
        }
        if y.n_rows() != self.fingerprint.m {
            return Err(PlanError::DimensionMismatch {
                what: "output block rows",
                expected: self.fingerprint.m,
                got: y.n_rows(),
            });
        }
        if y.k() != x.k() {
            return Err(PlanError::DimensionMismatch {
                what: "output block width",
                expected: x.k(),
                got: y.k(),
            });
        }
        Ok(())
    }

    /// Hand the compiled dispatch to the backend's batched entry.
    fn launch_all_batch(
        &self,
        a: &CsrMatrix<T>,
        x: &DenseBlock<T>,
        y: &mut DenseBlock<T>,
    ) -> LaunchCost {
        let cost = self.backend.launch_plan_batch(a, &self.parts(), x, y);
        self.telemetry.record(cost.wall.as_nanos() as u64, x.k());
        cost
    }

    /// Prove this plan's write sets against `a` and, on success, wrap it
    /// in a [`VerifiedPlan`] that unlocks the unchecked execute path.
    ///
    /// Runs [`check_dispatch`]: every output row in bounds, written by
    /// exactly one launch across all bins, cached bin NNZ consistent,
    /// and the Subvector/Vector NNZ-balanced splits exact partitions.
    /// Then [`check_payloads`]: every packed payload mirrors its bin's
    /// CSR entries slot-for-slot, and the fused tile queue partitions
    /// each bin's work — so the packed/fused path provably writes the
    /// same set of rows the dispatch proof covered. For sharded plans,
    /// [`check_shards`] then proves the shard partition: queues
    /// partition the tile ids, per-shard write sets match their queues
    /// and stay disjoint across shards, and each shard's `x` window
    /// covers its gathers. Failures are a typed [`VerifyError`] naming
    /// the bin, kernel id, and offending row range. The one O(m +
    /// Σ|rows| + slots) proof replaces the per-execute O(m) fingerprint
    /// scan — sharding adds the same order of work, so promotion cost
    /// is unchanged asymptotically.
    pub fn verify(self, a: &CsrMatrix<T>) -> Result<VerifiedPlan<T>, VerifyError> {
        let got = PatternFingerprint::of(a);
        if got != self.fingerprint {
            return Err(VerifyError::PatternMismatch {
                expected: self.fingerprint,
                got,
            });
        }
        check_dispatch(a, &self.dispatch)?;
        check_payloads(a, &self.dispatch, &self.payloads, &self.tiles)?;
        if let Some(shards) = &self.shards {
            check_shards(a, &self.dispatch, &self.payloads, &self.tiles, shards)?;
        }
        Ok(VerifiedPlan { plan: self })
    }

    /// The frozen strategy.
    pub fn strategy(&self) -> &Strategy {
        &self.strategy
    }

    /// Features extracted at compile time.
    pub fn features(&self) -> &MatrixFeatures {
        &self.features
    }

    /// The pattern this plan is bound to.
    pub fn fingerprint(&self) -> &PatternFingerprint {
        &self.fingerprint
    }

    /// The dispatch table (one entry per populated bin).
    pub fn dispatch(&self) -> &[BinDispatch] {
        &self.dispatch
    }

    /// Per-bin payloads, aligned with [`dispatch`](Self::dispatch).
    pub fn payloads(&self) -> &[BinPayload<T>] {
        &self.payloads
    }

    /// The fused tile queue (empty when compiled with `fused: false`).
    pub fn tiles(&self) -> &[Tile] {
        &self.tiles
    }

    /// Per-tile NNZ weights, aligned with [`tiles`](Self::tiles) — the
    /// LPT cost the batched executor scales by RHS-block width.
    pub fn tile_weights(&self) -> &[usize] {
        &self.tile_weights
    }

    /// The shard partition of the tile queue, when the plan was compiled
    /// for more than one shard (`None` means the flat queue).
    pub fn sharded(&self) -> Option<&ShardedTiles> {
        self.shards.as_ref()
    }

    /// The configuration the plan was compiled with.
    pub fn config(&self) -> &PlanConfig {
        &self.config
    }

    /// How many bins were materialised as packed SELL slabs.
    pub fn packed_bins(&self) -> usize {
        self.dispatch
            .iter()
            .filter(|d| matches!(d.format, BinFormat::PackedSell { .. }))
            .count()
    }

    /// How many bins the gate routed to cache-blocked execution.
    pub fn blocked_bins(&self) -> usize {
        self.dispatch
            .iter()
            .filter(|d| matches!(d.format, BinFormat::CacheBlockedCsr { .. }))
            .count()
    }

    /// How many bins the gate routed to a structure-specialized tier
    /// (dense-run, banded, or row-run).
    pub fn specialized_bins(&self) -> usize {
        self.dispatch
            .iter()
            .filter(|d| {
                matches!(
                    d.format,
                    BinFormat::DenseRun | BinFormat::Banded { .. } | BinFormat::RowRunReuse
                )
            })
            .count()
    }

    /// Memory-traffic accounting for one execution of this plan, summed
    /// over the materialised payloads (see [`TrafficStats`]).
    pub fn traffic(&self) -> TrafficStats {
        traffic_of(
            &self.dispatch,
            &self.payloads,
            self.features.avg_lines_per_row,
            self.fingerprint.m,
        )
    }

    /// Name of the backend launches run on.
    pub fn backend_name(&self) -> &'static str {
        self.backend.name()
    }

    /// Number of kernel launches per execution.
    pub fn launches(&self) -> usize {
        self.dispatch.len()
    }

    /// The plan's execution telemetry (live counters; take a
    /// [`snapshot`](PlanTelemetry::snapshot) to classify or report).
    pub fn telemetry(&self) -> &PlanTelemetry {
        &self.telemetry
    }
}

/// [`SpmvPlan::traffic`] over borrowed tables, so compilation can price
/// a plan's traffic before the plan value exists (telemetry freezes the
/// modelled byte count at compile time).
fn traffic_of<T: Scalar>(
    dispatch: &[BinDispatch],
    payloads: &[BinPayload<T>],
    avg_lines_per_row: f64,
    m: usize,
) -> TrafficStats {
    let mut t = TrafficStats::default();
    for (d, p) in dispatch.iter().zip(payloads) {
        match p {
            BinPayload::Packed(packed) => {
                t.value_bytes += packed.slots() * T::BYTES;
                t.index_bytes += packed.index_stream_bytes();
            }
            BinPayload::Csr | BinPayload::Blocked { .. } => {
                t.value_bytes += d.nnz * T::BYTES;
                t.index_bytes += d.nnz * 4;
            }
            // The structure fast paths stream values in full but
            // replace the per-non-zero index stream with their proven
            // structural metadata: run descriptors, the offset list,
            // or one pattern load per identical-row run.
            BinPayload::DenseRun(runs) => {
                t.value_bytes += d.nnz * T::BYTES;
                t.index_bytes += runs.index_stream_bytes();
            }
            BinPayload::Banded(band) => {
                t.value_bytes += d.nnz * T::BYTES;
                t.index_bytes += band.index_stream_bytes();
            }
            BinPayload::RowRun(rr) => {
                t.value_bytes += d.nnz * T::BYTES;
                t.index_bytes += rr.index_stream_bytes();
            }
        }
        t.nnz += d.nnz;
    }
    t.x_gather_bytes = (avg_lines_per_row * 64.0 * m as f64).round() as usize;
    t
}

/// Decide a bin's storage format and materialise its payload.
///
/// **Gate precedence** (first match wins — the order is part of the
/// contract, regression-tested in `core/tests/specialized_exec.rs`, so a
/// bin qualifying for several tiers resolves deterministically):
///
/// 1. [`BinFormat::Banded`] — band-complete bins over at most
///    [`PlanConfig::band_max_offsets`] diagonal offsets. Strongest
///    specialization: zero per-non-zero index traffic *and* the simplest
///    inner loop, so it outranks everything below.
/// 2. [`BinFormat::DenseRun`] — rows decomposing into contiguous runs of
///    average length ≥ [`PlanConfig::min_dense_run`]: near-zero index
///    traffic (two words per run).
/// 3. The SELL gate: packing must be enabled, the bin must have enough
///    rows to fill lanes, no row may exceed the dense-row bound, the
///    `u32` source map must suffice, and the realised padding must stay
///    under [`PlanConfig::max_padding`] — otherwise the bin falls back to
///    CSR. Packed bins pass through the bottleneck classifier's width
///    axis ([`IndexPolicy`]): compressed index lanes only when the
///    operand set outgrows [`PlanConfig::llc_bytes`], full `u32` words
///    when it is cache-resident.
/// 4. [`BinFormat::RowRunReuse`] — probed only in the compressed regime
///    (width floor below `u32`, i.e. the streaming working sets where
///    index bandwidth is the bottleneck) against the packed candidate
///    the SELL gate just built: it wins exactly when its modelled index
///    stream is *strictly* smaller than the packed stream; ties keep
///    [`BinFormat::PackedSell`] (the SIMD-friendlier layout).
/// 5. CSR-fallback bins pass through the scatter axis: when cache
///    blocking is enabled, the rows are column-sorted, `x` outgrows the
///    [`PlanConfig::l2_bytes`] budget, and the bin's measured column
///    locality marks it scatter-heavy, the fallback becomes
///    [`BinFormat::CacheBlockedCsr`] (same semantics, strip schedule).
/// 6. [`BinFormat::Csr`].
///
/// The structure probes (1, 2, 4) run only with
/// [`PlanConfig::specialize`] on; they deliberately sit *outside* the
/// `pack`/`max_row_nnz` gates — a long-row banded bin is still banded —
/// but share the ≥ 4 row floor and `u32` source-map bound.
fn choose_format<T: Scalar>(
    a: &CsrMatrix<T>,
    rows: &[u32],
    config: &PlanConfig,
) -> (BinFormat, BinPayload<T>) {
    let specialize = config.specialize && rows.len() >= 4 && a.nnz() < u32::MAX as usize;
    if specialize {
        if let Some(band) = BandSet::detect(a, rows, config.band_max_offsets) {
            return (
                BinFormat::Banded {
                    offsets: band.offsets().len(),
                },
                BinPayload::Banded(band),
            );
        }
        if let Some(runs) = DenseRuns::detect(a, rows, config.min_dense_run) {
            return (BinFormat::DenseRun, BinPayload::DenseRun(runs));
        }
    }
    if !config.pack || rows.len() < 4 || a.nnz() >= u32::MAX as usize {
        return csr_fallback(a, rows, config);
    }
    let max_nnz = rows
        .iter()
        .map(|&r| a.row_nnz(r as usize))
        .max()
        .unwrap_or(0);
    if max_nnz > config.max_row_nnz {
        return csr_fallback(a, rows, config);
    }
    let chunk = match config.chunk {
        0 => {
            let mut lens: Vec<usize> = rows.iter().map(|&r| a.row_nnz(r as usize)).collect();
            lens.sort_unstable_by(|x, y| y.cmp(x));
            match pick_auto_chunk(&lens, config.max_padding) {
                Some(c) => c,
                None => return csr_fallback(a, rows, config),
            }
        }
        c => c,
    };
    // The bottleneck classifier's width axis: under `Auto`, narrow
    // lanes are only worth their decode cost when the whole operand set
    // streams from memory every iteration — estimated as the matrix's
    // values + u32 indices + both dense vectors against the LLC budget.
    let floor = match config.index {
        IndexPolicy::Fixed(k) => k,
        IndexPolicy::Auto => {
            let streamed = a.nnz() * (T::BYTES + 4) + (a.n_rows() + a.n_cols()) * T::BYTES;
            if streamed > config.llc_bytes {
                IndexKind::U8
            } else {
                IndexKind::U32
            }
        }
    };
    let mut chunk = chunk;
    let mut packed = PackedSell::from_rows_with_index(a, rows, chunk, floor);
    if packed.padding_ratio() > config.max_padding {
        return csr_fallback(a, rows, config);
    }
    // Block-structured bins: if runs of identical rows dominate, repack
    // with the run length as the chunk height so every chunk holds
    // copies of one row (zero lane spread → narrowest deltas). Only
    // probed when the gate chose compression (at a u32 floor the run
    // height could merely trim padding, and the baseline layout must
    // stay exactly PR 3's), and kept only when it shrinks the stream.
    if floor < IndexKind::U32 {
        if let Some(c2) = packed.identical_run_chunk(a) {
            let alt = PackedSell::from_rows_with_index(a, rows, c2, floor);
            if alt.padding_ratio() <= config.max_padding
                && alt.index_stream_bytes() < packed.index_stream_bytes()
            {
                chunk = c2;
                packed = alt;
            }
        }
    }
    // Gate step 4: in the compressed regime, identical-row-run reuse
    // competes with the packed layout on modelled index bytes. Strictly
    // smaller wins; ties keep the SELL slab. Not probed at a u32 floor —
    // cache-resident operand sets re-read their index stream from cache,
    // so trading the SIMD-friendly slab for pattern reuse buys nothing.
    if specialize && floor < IndexKind::U32 {
        if let Some(rr) = RowRuns::detect(a, rows, config.min_row_run) {
            if rr.index_stream_bytes() < packed.index_stream_bytes() {
                return (BinFormat::RowRunReuse, BinPayload::RowRun(rr));
            }
        }
    }
    let index = packed.index_kind();
    (
        BinFormat::PackedSell { chunk, index },
        BinPayload::Packed(packed),
    )
}

/// The CSR side of the format gate: plain CSR, unless the bottleneck
/// classifier marks the bin latency-bound (scatter-heavy gathers over an
/// `x` larger than the cache budget), in which case the fused native
/// executor runs it column-blocked. The measured features are the bin's
/// average distinct-cache-lines-per-row (the classifier threshold) and
/// average column span (blocking only pays when rows actually span more
/// than one strip). Requires sorted rows — the strip walk only improves
/// locality when each row's columns are ascending.
fn csr_fallback<T: Scalar>(
    a: &CsrMatrix<T>,
    rows: &[u32],
    config: &PlanConfig,
) -> (BinFormat, BinPayload<T>) {
    let strip_cols = (config.l2_bytes / T::BYTES).max(1);
    if !config.cache_block || a.n_cols() <= strip_cols {
        return (BinFormat::Csr, BinPayload::Csr);
    }
    let sorted = rows.iter().all(|&r| {
        let (cols, _) = a.row(r as usize);
        cols.windows(2).all(|w| w[0] < w[1])
    });
    if !sorted {
        return (BinFormat::Csr, BinPayload::Csr);
    }
    let loc = ColumnLocality::of_rows::<T>(a, rows);
    if loc.avg_lines_per_row >= config.scatter_lines_per_row
        && loc.avg_col_span >= strip_cols as f64
    {
        (
            BinFormat::CacheBlockedCsr { strip_cols },
            BinPayload::Blocked { strip_cols },
        )
    } else {
        (BinFormat::Csr, BinPayload::Csr)
    }
}

/// Pick the chunk height for an auto (`config.chunk == 0`) bin from its
/// row-length spread. For each candidate height the padding the slab
/// *would* realise is computed analytically from the length-sorted row
/// lengths (exactly [`PackedSell`]'s slot count — widest lane of each
/// group of `C` times its lane count — with no slab materialised). The
/// widest candidate that packs tightly wins; when none does, the
/// least-padded candidate still under `max_padding`. High-variance bins
/// thus slide to narrower chunks — trading SIMD width for dead slots —
/// instead of losing to CSR outright. Returns `None` when every
/// candidate blows the padding gate.
fn pick_auto_chunk(lens_desc: &[usize], max_padding: f64) -> Option<usize> {
    /// Padding this tight is treated as free: take the widest such chunk.
    const TIGHT: f64 = 1.05;
    let candidates: &[usize] = if lens_desc.len() < 8 {
        &[4, 2]
    } else {
        &[8, 4, 2]
    };
    let nnz: usize = lens_desc.iter().sum();
    if nnz == 0 {
        return Some(candidates[0]);
    }
    let padding = |c: usize| {
        let mut slots = 0usize;
        let mut lane0 = 0usize;
        while lane0 < lens_desc.len() {
            let lanes = (lens_desc.len() - lane0).min(c);
            slots += lens_desc[lane0] * lanes;
            lane0 += c;
        }
        slots as f64 / nnz as f64
    };
    let mut best: Option<(usize, f64)> = None;
    for &c in candidates {
        let p = padding(c);
        if p <= TIGHT {
            return Some(c);
        }
        if best.is_none_or(|(_, bp)| p < bp) {
            best = Some((c, p));
        }
    }
    best.and_then(|(c, p)| (p <= max_padding).then_some(c))
}

/// Precompute the fused dispatch queue: cut every bin's work into tiles
/// of roughly `tile_nnz` non-zeros (chunk ranges for packed bins,
/// NNZ-balanced row spans for CSR bins — the hoisted form of the cuts the
/// per-launch path recomputes every call), then order the queue heaviest
/// first so the longest tiles start earliest (LPT-style balance under
/// work stealing). The per-tile NNZ weights are returned alongside the
/// queue — the batched executor scales them by the RHS-block width to
/// keep the LPT order correct under `K` vectors.
fn build_tiles<T: Scalar>(
    a: &CsrMatrix<T>,
    dispatch: &[BinDispatch],
    payloads: &[BinPayload<T>],
    config: &PlanConfig,
) -> (Vec<Tile>, Vec<usize>) {
    let total_nnz: usize = dispatch.iter().map(|d| d.nnz).sum();
    let tile_nnz = if config.tile_nnz == 0 {
        let workers = spmv_parallel::num_threads();
        (total_nnz / (workers * 8).max(1)).max(4096)
    } else {
        config.tile_nnz.max(1)
    };
    let mut weighted: Vec<(Tile, usize)> = Vec::new();
    for (bin, (d, p)) in dispatch.iter().zip(payloads).enumerate() {
        match p {
            BinPayload::Packed(packed) => {
                let n_chunks = packed.n_chunks();
                let mut start = 0usize;
                let mut acc = 0usize;
                for c in 0..n_chunks {
                    acc += packed.chunk_nnz(c);
                    if acc >= tile_nnz {
                        weighted.push((
                            Tile {
                                bin,
                                start,
                                end: c + 1,
                            },
                            acc,
                        ));
                        start = c + 1;
                        acc = 0;
                    }
                }
                if start < n_chunks {
                    weighted.push((
                        Tile {
                            bin,
                            start,
                            end: n_chunks,
                        },
                        acc,
                    ));
                }
            }
            // Blocked and specialized bins tile over row spans exactly
            // like CSR bins — every strip of a row lives inside one tile,
            // and the run kernels clip their runs to tile spans — so tile
            // disjointness covers every partial-sum write.
            BinPayload::Csr
            | BinPayload::Blocked { .. }
            | BinPayload::DenseRun(_)
            | BinPayload::Banded(_)
            | BinPayload::RowRun(_) => {
                let parts = d.nnz.div_ceil(tile_nnz).max(1);
                let cuts = rows_nnz_cuts(a, &d.rows, parts);
                for w in cuts.windows(2) {
                    if w[0] < w[1] {
                        let nnz: usize = d.rows[w[0]..w[1]]
                            .iter()
                            .map(|&r| a.row_nnz(r as usize))
                            .sum();
                        weighted.push((
                            Tile {
                                bin,
                                start: w[0],
                                end: w[1],
                            },
                            nnz,
                        ));
                    }
                }
            }
        }
    }
    weighted.sort_by_key(|&(_, w)| std::cmp::Reverse(w));
    weighted.into_iter().unzip()
}

/// A plan whose write sets have been *proven* disjoint, in-bounds, and
/// covering by [`SpmvPlan::verify`] — the token that unlocks
/// [`execute_unchecked`](VerifiedPlan::execute_unchecked).
///
/// The only way to obtain one is through `verify`; the wrapped plan is
/// immutable from outside, so the proof cannot go stale for the pattern
/// it was established against.
pub struct VerifiedPlan<T: Scalar> {
    plan: SpmvPlan<T>,
}

impl<T: Scalar> VerifiedPlan<T> {
    /// Execute without the per-call O(m) fingerprint scan.
    ///
    /// Validation is O(1): vector lengths plus the matrix's dimensions
    /// and NNZ against the compiled fingerprint. The row-pointer hash is
    /// *not* rechecked — that is exactly the cost the verification proof
    /// paid for once. Handing this a different matrix that happens to
    /// share dimensions and NNZ therefore produces wrong *values* (never
    /// undefined behaviour: row reads still go through bounds-checked
    /// slices, and output writes were proven in-bounds for this shape).
    /// Value-only updates — the intended use — are always fine.
    pub fn execute_unchecked(
        &self,
        a: &CsrMatrix<T>,
        v: &[T],
        u: &mut [T],
    ) -> Result<LaunchCost, PlanError> {
        let fp = &self.plan.fingerprint;
        if v.len() != fp.n {
            return Err(PlanError::DimensionMismatch {
                what: "input vector",
                expected: fp.n,
                got: v.len(),
            });
        }
        if u.len() != fp.m {
            return Err(PlanError::DimensionMismatch {
                what: "output vector",
                expected: fp.m,
                got: u.len(),
            });
        }
        if a.n_rows() != fp.m || a.n_cols() != fp.n || a.nnz() != fp.nnz {
            return Err(PlanError::PatternMismatch {
                expected: *fp,
                got: PatternFingerprint::of(a),
            });
        }
        Ok(self.plan.launch_all(a, v, u))
    }

    /// The checked execute path (full fingerprint validation), for
    /// callers that want the proof *and* the per-call pattern guard.
    pub fn execute(&self, a: &CsrMatrix<T>, v: &[T], u: &mut [T]) -> Result<LaunchCost, PlanError> {
        self.plan.execute(a, v, u)
    }

    /// Batched execute without the per-call O(m) fingerprint scan: the
    /// SpMM counterpart of [`execute_unchecked`](Self::execute_unchecked),
    /// with the same O(1) validation contract. The verification proof
    /// already covered the batched write set — `check_payloads` proves
    /// the RHS-block decomposition partitions `[0, K)` for a sweep of
    /// widths, so the (tile × block) queue writes each output element
    /// exactly once.
    pub fn execute_batch_unchecked(
        &self,
        a: &CsrMatrix<T>,
        x: &DenseBlock<T>,
        y: &mut DenseBlock<T>,
    ) -> Result<LaunchCost, PlanError> {
        let fp = &self.plan.fingerprint;
        self.plan.check_batch_dims(x, y)?;
        if a.n_rows() != fp.m || a.n_cols() != fp.n || a.nnz() != fp.nnz {
            return Err(PlanError::PatternMismatch {
                expected: *fp,
                got: PatternFingerprint::of(a),
            });
        }
        Ok(self.plan.launch_all_batch(a, x, y))
    }

    /// Batched execute with the full per-call fingerprint guard.
    pub fn execute_batch(
        &self,
        a: &CsrMatrix<T>,
        x: &DenseBlock<T>,
        y: &mut DenseBlock<T>,
    ) -> Result<LaunchCost, PlanError> {
        self.plan.execute_batch(a, x, y)
    }

    /// The underlying plan.
    pub fn plan(&self) -> &SpmvPlan<T> {
        &self.plan
    }

    /// The pattern this plan is bound to (cache-key convenience; same as
    /// `plan().fingerprint()`).
    pub fn fingerprint(&self) -> &PatternFingerprint {
        &self.plan.fingerprint
    }

    /// The configuration the plan was compiled with (cache-key
    /// convenience; same as `plan().config()`).
    pub fn config(&self) -> &PlanConfig {
        &self.plan.config
    }

    /// The plan's execution telemetry (live counters; take a
    /// [`snapshot`](crate::telemetry::PlanTelemetry::snapshot) to read).
    pub fn telemetry(&self) -> &crate::telemetry::PlanTelemetry {
        self.plan.telemetry()
    }

    /// Unwrap, dropping the proof token.
    pub fn into_inner(self) -> SpmvPlan<T> {
        self.plan
    }
}

impl<T: Scalar> std::fmt::Debug for VerifiedPlan<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("VerifiedPlan")
            .field("plan", &self.plan)
            .finish()
    }
}

impl<T: Scalar> std::fmt::Debug for SpmvPlan<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SpmvPlan")
            .field("strategy", &self.strategy)
            .field("fingerprint", &self.fingerprint)
            .field("launches", &self.dispatch.len())
            .field("backend", &self.backend.name())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::binning::BinningScheme;
    use crate::exec::{NativeCpuBackend, SimGpuBackend};
    use spmv_gpusim::GpuDevice;
    use spmv_sparse::gen;
    use spmv_sparse::scalar::approx_eq;

    fn plan_for(a: &CsrMatrix<f64>) -> SpmvPlan<f64> {
        let strategy = Strategy {
            binning: BinningScheme::Coarse { u: 10 },
            kernels: vec![KernelId::Serial; 8],
        };
        SpmvPlan::compile(
            a,
            strategy,
            Box::new(SimGpuBackend::new(GpuDevice::kaveri())),
        )
    }

    #[test]
    fn fingerprint_distinguishes_structures_not_values() {
        let a = gen::random_uniform::<f64>(200, 200, 1, 6, 1);
        let mut b = a.clone();
        b.fill_values_with(|k| k as f64 * 0.5);
        assert_eq!(PatternFingerprint::of(&a), PatternFingerprint::of(&b));
        let c = gen::random_uniform::<f64>(200, 200, 1, 6, 2);
        assert_ne!(PatternFingerprint::of(&a), PatternFingerprint::of(&c));
    }

    #[test]
    fn execute_matches_reference_and_reuses_across_value_updates() {
        let mut a = gen::powerlaw::<f64>(500, 1, 80, 2.1, 9);
        let plan = plan_for(&a);
        let v: Vec<f64> = (0..a.n_cols()).map(|i| (i % 4) as f64).collect();
        for round in 0..3 {
            let mut u = vec![0.0f64; a.n_rows()];
            plan.execute(&a, &v, &mut u).unwrap();
            let reference = a.spmv_seq_alloc(&v).unwrap();
            for i in 0..a.n_rows() {
                assert!(
                    approx_eq(u[i], reference[i], a.row_nnz(i).max(1)),
                    "round {round} row {i}"
                );
            }
            a.fill_values_with(|k| ((k + round) % 7) as f64 - 3.0);
        }
    }

    #[test]
    fn confirm_checksum_is_independent_of_fnv() {
        // Same multiset of row-pointer values in a different order: the
        // position-mixed confirm checksum must separate what a purely
        // value-driven digest could conflate, and any structural change
        // must move it.
        let a = [0usize, 2, 5, 9];
        let b = [0usize, 5, 2, 9];
        assert_ne!(confirm_row_ptr(&a), confirm_row_ptr(&b));
        assert_eq!(confirm_row_ptr(&a), confirm_row_ptr(&[0, 2, 5, 9]));
        let m = gen::random_uniform::<f64>(200, 200, 1, 6, 1);
        let mut v = m.clone();
        v.fill_values_with(|k| k as f64);
        // Value-only updates leave the structural confirm unchanged.
        assert_eq!(
            PatternFingerprint::confirm_of(&m),
            PatternFingerprint::confirm_of(&v)
        );
    }

    #[test]
    fn cache_key_freezes_every_knob_including_floats() {
        let base = PlanConfig::default();
        assert_eq!(base.cache_key(), PlanConfig::default().cache_key());
        let padded = PlanConfig {
            max_padding: 1.25 + f64::EPSILON,
            ..base
        };
        assert_ne!(base.cache_key(), padded.cache_key());
        let fixed = PlanConfig {
            index: IndexPolicy::Fixed(IndexKind::U16),
            ..base
        };
        assert_ne!(base.cache_key(), fixed.cache_key());
        assert_ne!(
            fixed.cache_key(),
            PlanConfig {
                index: IndexPolicy::Fixed(IndexKind::U32),
                ..base
            }
            .cache_key()
        );
    }

    #[test]
    fn structural_mismatch_is_a_typed_error() {
        let a = gen::random_uniform::<f64>(300, 300, 2, 5, 3);
        let b = gen::random_uniform::<f64>(300, 300, 2, 5, 4);
        let plan = plan_for(&a);
        let v = vec![1.0f64; 300];
        let mut u = vec![0.0f64; 300];
        match plan.execute(&b, &v, &mut u) {
            Err(PlanError::PatternMismatch { .. }) => {}
            other => panic!("expected PatternMismatch, got {other:?}"),
        }
    }

    #[test]
    fn dimension_mismatch_is_a_typed_error() {
        let a = gen::random_uniform::<f64>(100, 120, 1, 4, 5);
        let plan = plan_for(&a);
        let mut u = vec![0.0f64; 100];
        assert!(matches!(
            plan.execute(&a, &[0.0; 7], &mut u),
            Err(PlanError::DimensionMismatch {
                what: "input vector",
                ..
            })
        ));
        assert!(matches!(
            plan.execute(&a, &vec![0.0; 120], &mut [0.0; 3]),
            Err(PlanError::DimensionMismatch {
                what: "output vector",
                ..
            })
        ));
    }

    #[test]
    fn dispatch_covers_every_row_exactly_once() {
        let a = gen::powerlaw::<f64>(700, 1, 120, 2.0, 6);
        let plan = plan_for(&a);
        let mut seen = vec![0usize; a.n_rows()];
        for d in plan.dispatch() {
            for &r in &d.rows {
                seen[r as usize] += 1;
            }
        }
        assert!(seen.iter().all(|&c| c == 1));
    }

    #[test]
    fn verified_plan_unchecked_matches_checked_bit_for_bit() {
        let a = gen::powerlaw::<f64>(600, 1, 110, 2.0, 11);
        let strategy = Strategy {
            binning: BinningScheme::Coarse { u: 10 },
            kernels: (0..8)
                .map(|b| {
                    if b < 2 {
                        KernelId::Serial
                    } else {
                        KernelId::Subvector(16)
                    }
                })
                .collect(),
        };
        let checked = SpmvPlan::compile(&a, strategy.clone(), Box::new(NativeCpuBackend::new()));
        let verified = SpmvPlan::compile(&a, strategy, Box::new(NativeCpuBackend::new()))
            .verify(&a)
            .unwrap();
        let v: Vec<f64> = (0..a.n_cols())
            .map(|i| ((i * 7) % 13) as f64 - 6.0)
            .collect();
        let mut u1 = vec![0.0f64; a.n_rows()];
        let mut u2 = vec![0.0f64; a.n_rows()];
        checked.execute(&a, &v, &mut u1).unwrap();
        verified.execute_unchecked(&a, &v, &mut u2).unwrap();
        assert_eq!(u1, u2, "unchecked path must be bit-identical");
    }

    #[test]
    fn verify_rejects_the_wrong_matrix() {
        let a = gen::random_uniform::<f64>(200, 200, 1, 5, 1);
        let b = gen::random_uniform::<f64>(200, 200, 1, 5, 2);
        let plan = plan_for(&a);
        match plan.verify(&b) {
            Err(crate::verify::VerifyError::PatternMismatch { .. }) => {}
            other => panic!("expected PatternMismatch, got {other:?}"),
        }
    }

    #[test]
    fn unchecked_still_catches_dimension_and_shape_errors() {
        let a = gen::random_uniform::<f64>(150, 170, 1, 4, 9);
        let verified = plan_for(&a).verify(&a).unwrap();
        let mut u = vec![0.0f64; 150];
        assert!(matches!(
            verified.execute_unchecked(&a, &[0.0; 3], &mut u),
            Err(PlanError::DimensionMismatch {
                what: "input vector",
                ..
            })
        ));
        // A structurally different matrix with a different nnz count is
        // still rejected in O(1).
        let b = gen::random_uniform::<f64>(150, 170, 2, 6, 10);
        let v = vec![0.0f64; 170];
        assert!(matches!(
            verified.execute_unchecked(&b, &v, &mut u),
            Err(PlanError::PatternMismatch { .. })
        ));
    }

    #[test]
    fn native_plan_matches_sim_plan() {
        let a = gen::powerlaw::<f64>(400, 1, 90, 2.2, 7);
        let strategy = Strategy {
            binning: BinningScheme::Coarse { u: 10 },
            kernels: (0..8)
                .map(|b| {
                    if b < 4 {
                        KernelId::Serial
                    } else {
                        KernelId::Vector
                    }
                })
                .collect(),
        };
        let sim = SpmvPlan::compile(
            &a,
            strategy.clone(),
            Box::new(SimGpuBackend::new(GpuDevice::kaveri())),
        );
        let cpu = SpmvPlan::compile(&a, strategy, Box::new(NativeCpuBackend::new()));
        let v: Vec<f64> = (0..a.n_cols())
            .map(|i| ((i * 3) % 11) as f64 - 5.0)
            .collect();
        let mut u1 = vec![0.0f64; a.n_rows()];
        let mut u2 = vec![0.0f64; a.n_rows()];
        sim.execute(&a, &v, &mut u1).unwrap();
        cpu.execute(&a, &v, &mut u2).unwrap();
        for i in 0..a.n_rows() {
            assert!(approx_eq(u1[i], u2[i], a.row_nnz(i).max(1)), "row {i}");
        }
    }
}
