//! A persistent thread pool for `'static` jobs.
//!
//! The auto-tuning framework issues one kernel launch per bin; on the CPU
//! backend those launches are frequent and small, so respawning threads
//! per launch (as the scoped layer does) would dominate. The pool keeps
//! workers parked on a shared queue and hands out boxed jobs;
//! [`ThreadPool::run_batch`] submits a batch and blocks until all of it
//! completes.
//!
//! The queue is an explicit `Mutex<VecDeque<Job>>` + `Condvar` rather
//! than an `mpsc` channel: a channel's `Sender` is `!Sync`, which made
//! the whole pool `!Sync` and forced every sharing caller to clone or
//! wrap it. With the explicit queue the pool is `Send + Sync` (statically
//! asserted below), so a multi-tenant runtime can hand `&ThreadPool` to
//! concurrent plan executors directly.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

type Job = Box<dyn FnOnce() + Send + 'static>;

/// Completion latch for one submitted batch.
///
/// Batch-wakeup protocol invariant (model-checked by `spmv-verify`'s
/// `BatchModel`): the completer that takes `pending` to zero MUST acquire
/// `lock` before calling `notify_all`. The waiter's re-check of `pending`
/// and its descent into `cv.wait` are atomic only while it holds `lock`;
/// a notify issued between those two steps without holding the lock can
/// land before the waiter blocks and is lost — the waiter then sleeps
/// forever on a batch that already finished. `BatchModel::
/// notify_without_lock` is exactly that broken variant, and the
/// interleaving explorer proves it deadlocks while `BatchModel::correct`
/// (this protocol) does not. Keep the lock acquisition in
/// [`complete_one`](Self::complete_one) and the decrement ordering
/// (`AcqRel` release-paired with the waiter's `Acquire` load) in sync
/// with that model.
struct BatchState {
    pending: AtomicUsize,
    lock: Mutex<()>,
    cv: Condvar,
}

impl BatchState {
    fn new(n: usize) -> Arc<Self> {
        Arc::new(Self {
            pending: AtomicUsize::new(n),
            lock: Mutex::new(()),
            cv: Condvar::new(),
        })
    }

    fn complete_one(&self) {
        if self.pending.fetch_sub(1, Ordering::AcqRel) == 1 {
            // Invariant: lock-then-notify. See the struct docs; dropping
            // this lock acquisition reintroduces the lost wakeup that
            // `BatchModel::notify_without_lock` exhibits.
            let _g = self.lock.lock().unwrap();
            self.cv.notify_all();
        }
    }

    fn wait(&self) {
        let mut g = self.lock.lock().unwrap();
        while self.pending.load(Ordering::Acquire) != 0 {
            g = self.cv.wait(g).unwrap();
        }
    }
}

/// The shared job queue. Workers park on `cv`; `shutdown` tells them to
/// exit once the queue is drained (jobs submitted before shutdown still
/// run — `Drop` relies on that to be loss-free).
struct Queue {
    jobs: Mutex<QueueState>,
    cv: Condvar,
}

struct QueueState {
    jobs: VecDeque<Job>,
    shutdown: bool,
}

impl Queue {
    fn new() -> Self {
        Self {
            jobs: Mutex::new(QueueState {
                jobs: VecDeque::new(),
                shutdown: false,
            }),
            cv: Condvar::new(),
        }
    }

    fn push(&self, job: Job) {
        let mut st = self.jobs.lock().unwrap();
        assert!(!st.shutdown, "pool already shut down");
        st.jobs.push_back(job);
        drop(st);
        self.cv.notify_one();
    }

    /// Block for the next job; `None` means drained-and-shut-down.
    fn pop(&self) -> Option<Job> {
        let mut st = self.jobs.lock().unwrap();
        loop {
            if let Some(job) = st.jobs.pop_front() {
                return Some(job);
            }
            if st.shutdown {
                return None;
            }
            st = self.cv.wait(st).unwrap();
        }
    }

    fn shut_down(&self) {
        self.jobs.lock().unwrap().shutdown = true;
        self.cv.notify_all();
    }
}

/// A fixed-size pool of parked worker threads.
pub struct ThreadPool {
    queue: Arc<Queue>,
    workers: Vec<JoinHandle<()>>,
    size: usize,
}

/// Compile-time `Send + Sync` proof: sharing `&ThreadPool` across threads
/// is part of the pool's contract, not an accident of its current fields.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<ThreadPool>();
};

impl ThreadPool {
    /// Spawn a pool with `size` workers (clamped to ≥ 1).
    pub fn new(size: usize) -> Self {
        let size = size.max(1);
        let queue = Arc::new(Queue::new());
        let workers = (0..size)
            .map(|i| {
                let queue = Arc::clone(&queue);
                std::thread::Builder::new()
                    .name(format!("spmv-pool-{i}"))
                    .spawn(move || {
                        // Hold the queue lock only while dequeuing, never
                        // while running the job.
                        while let Some(job) = queue.pop() {
                            job();
                        }
                    })
                    .expect("failed to spawn pool worker")
            })
            .collect();
        Self {
            queue,
            workers,
            size,
        }
    }

    /// Pool sized to the resolved process placement
    /// ([`crate::scope::num_threads`]): `SPMV_PLACEMENT` / the
    /// `SPMV_THREADS` alias if set, else one worker per available core
    /// (or `SPMV_NUM_THREADS`).
    pub fn with_default_size() -> Self {
        Self::new(crate::scope::num_threads())
    }

    /// Number of workers.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Submit one fire-and-forget job.
    pub fn submit<F: FnOnce() + Send + 'static>(&self, f: F) {
        self.queue.push(Box::new(f));
    }

    /// Submit a batch of jobs and block until every one has finished.
    pub fn run_batch<I>(&self, jobs: I)
    where
        I: IntoIterator,
        I::Item: FnOnce() + Send + 'static,
    {
        let jobs: Vec<I::Item> = jobs.into_iter().collect();
        if jobs.is_empty() {
            return;
        }
        let state = BatchState::new(jobs.len());
        for job in jobs {
            let st = Arc::clone(&state);
            self.submit(move || {
                job();
                st.complete_one();
            });
        }
        state.wait();
    }

    /// Run every closure of `jobs` on the pool and block until all have
    /// finished, without boxing each job: only `min(size, jobs.len())`
    /// runner closures are submitted, each draining job indices from a
    /// shared atomic cursor. This is the cheap path for launches made of
    /// many tiny bins, where [`run_batch`](Self::run_batch)'s one heap
    /// allocation per job dominates the work itself.
    ///
    /// The jobs are borrowed, not `'static`: the call blocks until every
    /// runner has finished touching the slice, so the borrow is safe to
    /// erase internally. Jobs must not panic (a panicking job kills its
    /// pool worker before the completion latch is counted down — the
    /// same restriction [`run_batch`](Self::run_batch) has).
    pub fn run_batch_ref<J>(&self, jobs: &[J])
    where
        J: Fn() + Sync,
    {
        if jobs.is_empty() {
            return;
        }
        let runners = self.size.min(jobs.len());
        // One latch count per runner (each completes exactly once after
        // the cursor is exhausted), not per job.
        let state = BatchState::new(runners);
        let cursor = Arc::new(AtomicUsize::new(0));
        let slice = ErasedSlice::new(jobs);
        for _ in 0..runners {
            let st = Arc::clone(&state);
            let cur = Arc::clone(&cursor);
            self.submit(move || {
                loop {
                    let i = cur.fetch_add(1, Ordering::Relaxed);
                    if i >= slice.len {
                        break;
                    }
                    // SAFETY: `i < slice.len`, and the slice outlives this
                    // call — `run_batch_ref` holds the borrow and does not
                    // return until `state.wait()` observes every runner's
                    // `complete_one`, which each runner issues only after
                    // its last access to the slice (the AcqRel decrement
                    // paired with the waiter's Acquire load gives the
                    // happens-before edge).
                    unsafe { slice.call(i) };
                }
                st.complete_one();
            });
        }
        state.wait();
    }
}

/// A type- and lifetime-erased `&[J]` that can ride into `'static` pool
/// jobs. Erasure is sound only under `run_batch_ref`'s blocking
/// discipline (see the SAFETY comment at the call site).
#[derive(Clone, Copy)]
struct ErasedSlice {
    base: *const u8,
    len: usize,
    call_one: unsafe fn(*const u8, usize),
}

impl ErasedSlice {
    fn new<J: Fn() + Sync>(jobs: &[J]) -> Self {
        /// # Safety
        ///
        /// `base` must come from a live `&[J]` with `i` in bounds
        /// (ErasedSlice::call's contract).
        unsafe fn call_one<J: Fn() + Sync>(base: *const u8, i: usize) {
            // SAFETY: forwarded directly from this fn's own contract.
            unsafe { (*(base as *const J).add(i))() }
        }
        Self {
            base: jobs.as_ptr() as *const u8,
            len: jobs.len(),
            call_one: call_one::<J>,
        }
    }

    /// Call job `i`.
    ///
    /// # Safety
    ///
    /// The slice this was built from must still be live and `i < len`.
    unsafe fn call(&self, i: usize) {
        debug_assert!(i < self.len);
        // SAFETY: forwarded contract — `base`/`len` describe a live slice
        // of the erased element type and `i` is in bounds.
        unsafe { (self.call_one)(self.base, i) }
    }
}

// SAFETY: the pointer refers to a slice of `J: Sync` elements, so `&J`
// access from other threads is allowed; lifetime validity is enforced by
// `run_batch_ref` blocking until all runners finish.
unsafe impl Send for ErasedSlice {}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        // Mark the queue shut down so workers drain what is left and
        // exit, then join them.
        self.queue.shut_down();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn batch_completes_all_jobs() {
        let pool = ThreadPool::new(4);
        let counter = Arc::new(AtomicU64::new(0));
        let jobs: Vec<_> = (0..100)
            .map(|i| {
                let c = Arc::clone(&counter);
                move || {
                    c.fetch_add(i, Ordering::Relaxed);
                }
            })
            .collect();
        pool.run_batch(jobs);
        assert_eq!(counter.load(Ordering::Relaxed), (0..100).sum::<u64>());
    }

    #[test]
    fn empty_batch_returns_immediately() {
        let pool = ThreadPool::new(2);
        pool.run_batch(Vec::<fn()>::new());
    }

    #[test]
    fn sequential_batches_are_ordered() {
        let pool = ThreadPool::new(3);
        let log = Arc::new(Mutex::new(Vec::new()));
        for round in 0..5 {
            let jobs: Vec<_> = (0..10)
                .map(|_| {
                    let log = Arc::clone(&log);
                    move || log.lock().unwrap().push(round)
                })
                .collect();
            pool.run_batch(jobs);
        }
        let log = log.lock().unwrap();
        // Each round's 10 entries appear before any later round's.
        for (i, w) in log.windows(2).enumerate() {
            assert!(w[0] <= w[1], "out of order at {i}: {:?}", &log[..]);
        }
        assert_eq!(log.len(), 50);
    }

    #[test]
    fn batch_ref_completes_all_jobs_without_boxing_each() {
        let pool = ThreadPool::new(4);
        let hits: Vec<AtomicU64> = (0..257).map(|_| AtomicU64::new(0)).collect();
        let jobs: Vec<_> = (0..hits.len())
            .map(|i| {
                let h = &hits[i];
                move || {
                    h.fetch_add(1, Ordering::Relaxed);
                }
            })
            .collect();
        pool.run_batch_ref(&jobs);
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn batch_ref_empty_and_single() {
        let pool = ThreadPool::new(3);
        pool.run_batch_ref::<fn()>(&[]);
        let hit = AtomicU64::new(0);
        let one = [|| {
            hit.fetch_add(5, Ordering::Relaxed);
        }];
        pool.run_batch_ref(&one);
        assert_eq!(hit.load(Ordering::Relaxed), 5);
    }

    #[test]
    fn batch_ref_more_jobs_than_workers_and_vice_versa() {
        for (workers, jobs) in [(2usize, 50usize), (8, 3)] {
            let pool = ThreadPool::new(workers);
            let sum = AtomicU64::new(0);
            let batch: Vec<_> = (0..jobs as u64)
                .map(|i| {
                    let s = &sum;
                    move || {
                        s.fetch_add(i, Ordering::Relaxed);
                    }
                })
                .collect();
            pool.run_batch_ref(&batch);
            assert_eq!(sum.load(Ordering::Relaxed), (0..jobs as u64).sum::<u64>());
        }
    }

    #[test]
    fn size_is_clamped_to_one() {
        let pool = ThreadPool::new(0);
        assert_eq!(pool.size(), 1);
        let hit = Arc::new(AtomicU64::new(0));
        let h = Arc::clone(&hit);
        pool.run_batch([move || {
            h.store(7, Ordering::Relaxed);
        }]);
        assert_eq!(hit.load(Ordering::Relaxed), 7);
    }

    #[test]
    fn drop_joins_workers_cleanly() {
        let pool = ThreadPool::new(4);
        let counter = Arc::new(AtomicU64::new(0));
        for _ in 0..10 {
            let c = Arc::clone(&counter);
            pool.submit(move || {
                c.fetch_add(1, Ordering::Relaxed);
            });
        }
        drop(pool); // must drain and join without hanging
        assert_eq!(counter.load(Ordering::Relaxed), 10);
    }

    #[test]
    fn pool_is_shareable_by_reference_across_threads() {
        // The Send + Sync contract in practice: concurrent submitters
        // over `&ThreadPool`, no cloning or wrapping.
        let pool = ThreadPool::new(2);
        let counter = AtomicU64::new(0);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    let c = &counter;
                    let jobs: Vec<_> = (0..25)
                        .map(|_| {
                            move || {
                                c.fetch_add(1, Ordering::Relaxed);
                            }
                        })
                        .collect();
                    pool.run_batch_ref(&jobs);
                });
            }
        });
        assert_eq!(counter.load(Ordering::Relaxed), 100);
    }
}
