//! A minimal aligned-column table printer for experiment output.

/// A text table with a header row.
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// New table with the given column headers.
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Self {
        Self {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Append one row (must match the header width).
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) -> &mut Self {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
        self
    }

    /// Render to a string with column alignment and a separator line.
    pub fn render(&self) -> String {
        let ncol = self.headers.len();
        let mut width = vec![0usize; ncol];
        for c in 0..ncol {
            width[c] = self.headers[c].chars().count();
            for r in &self.rows {
                width[c] = width[c].max(r[c].chars().count());
            }
        }
        let fmt_row = |cells: &[String]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(c, s)| format!("{:<w$}", s, w = width[c]))
                .collect::<Vec<_>>()
                .join("  ")
                .trim_end()
                .to_string()
        };
        let mut out = String::new();
        out.push_str(&fmt_row(&self.headers));
        out.push('\n');
        out.push_str(&"-".repeat(width.iter().sum::<usize>() + 2 * (ncol - 1)));
        out.push('\n');
        for r in &self.rows {
            out.push_str(&fmt_row(r));
            out.push('\n');
        }
        out
    }

    /// Print to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Format a float to 3 significant decimals, tidy for tables.
pub fn f3(x: f64) -> String {
    if x == 0.0 {
        "0".into()
    } else if x.abs() >= 100.0 {
        format!("{x:.0}")
    } else if x.abs() >= 10.0 {
        format!("{x:.1}")
    } else {
        format!("{x:.2}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(vec!["name", "value"]);
        t.row(vec!["a", "1"]);
        t.row(vec!["longer-name", "2.5"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[1].chars().all(|c| c == '-'));
        // Both data rows align the second column at the same offset.
        let off_a = lines[2].find('1').unwrap();
        let off_b = lines[3].find('2').unwrap();
        assert_eq!(off_a, off_b);
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn rejects_ragged_rows() {
        let mut t = Table::new(vec!["a", "b"]);
        t.row(vec!["only-one"]);
    }

    #[test]
    fn f3_formats_by_magnitude() {
        assert_eq!(f3(0.0), "0");
        assert_eq!(f3(3.24159), "3.24");
        assert_eq!(f3(42.123), "42.1");
        // `{:.0}` rounds ties to even, so probe away from the .5 boundary.
        assert_eq!(f3(1234.6), "1235");
        assert_eq!(f3(1234.4), "1234");
    }
}
