//! The exhaustive oracle tuner: for every candidate binning granularity,
//! bin the matrix, try every kernel on every populated bin, and keep the
//! cheapest combination. This is the ground truth the machine-learning
//! model is trained to imitate (§III-C's off-line "train process").
//!
//! Since the kernel pool grew a format axis (packed/compressed tiers,
//! and the structure-specialized dense-run/banded/row-run families of
//! the generated kernel table), the tuner also searches that enlarged
//! space: [`Tuner::tune_format`] prices one strategy under each format
//! tier on the SimGpu traffic model and falls back to measured
//! native-CPU timings when the model calls it too close.

use crate::binning::{bin_matrix, BinningScheme};
use crate::exec::{NativeCpuBackend, SimGpuBackend};
use crate::kernels::{run_kernel, KernelId, ALL_KERNELS};
use crate::plan::{IndexPolicy, PlanConfig, SpmvPlan};
use crate::strategy::Strategy;
use spmv_gpusim::{GpuDevice, LaunchStats};
use spmv_parallel::parallel_map_collect;
use spmv_sparse::{CsrMatrix, IndexKind, Scalar};

/// Tuner search space.
#[derive(Clone, Debug)]
pub struct TunerConfig {
    /// Candidate coarse granularities `U` (default: the paper's presets
    /// 10, 20, 50, …, 10^6).
    pub granularities: Vec<usize>,
    /// Kernel pool (default: all nine).
    pub kernels: Vec<KernelId>,
    /// Also evaluate the single-bin strategy (§IV-C; the paper lists
    /// this as future work — on by default here as our extension).
    pub include_single_bin: bool,
}

impl Default for TunerConfig {
    fn default() -> Self {
        Self {
            granularities: BinningScheme::paper_granularities(),
            kernels: ALL_KERNELS.to_vec(),
            include_single_bin: true,
        }
    }
}

impl TunerConfig {
    /// A reduced search space for corpus-scale training runs: decade
    /// granularities only, all kernels, no single-bin (the paper's
    /// stage-1 label space).
    pub fn training() -> Self {
        Self {
            granularities: vec![10, 100, 1_000, 10_000, 100_000, 1_000_000],
            kernels: ALL_KERNELS.to_vec(),
            include_single_bin: false,
        }
    }

    /// Paper-faithful space (no single-bin candidate), used for the
    /// Figure 9 discussion.
    pub fn paper() -> Self {
        Self {
            include_single_bin: false,
            ..Default::default()
        }
    }
}

/// Chosen kernel and cost of one bin under one scheme.
#[derive(Clone, Debug)]
pub struct BinChoice {
    /// Bin id.
    pub bin_id: usize,
    /// Rows the bin expands to.
    pub rows: usize,
    /// Non-zeros covered by the bin.
    pub nnz: usize,
    /// Winning kernel.
    pub kernel: KernelId,
    /// Priced launch of the winning kernel.
    pub stats: LaunchStats,
}

/// Full evaluation of one binning scheme.
#[derive(Clone, Debug)]
pub struct CandidateResult {
    /// The scheme evaluated.
    pub scheme: BinningScheme,
    /// Total cycles (sum over per-bin launches).
    pub cycles: f64,
    /// Per-bin winners.
    pub choices: Vec<BinChoice>,
}

impl CandidateResult {
    /// Materialise the strategy this candidate stands for.
    pub fn strategy(&self) -> Strategy {
        let max_bin = self.choices.iter().map(|c| c.bin_id).max().unwrap_or(0);
        let mut kernels = vec![KernelId::Serial; max_bin + 1];
        for c in &self.choices {
            kernels[c.bin_id] = c.kernel;
        }
        // Fill gaps (unpopulated bins) with the nearest populated choice
        // below, so the strategy is total.
        let mut last = kernels.first().copied().unwrap_or(KernelId::Serial);
        let populated: Vec<usize> = self.choices.iter().map(|c| c.bin_id).collect();
        for (b, k) in kernels.iter_mut().enumerate() {
            if populated.contains(&b) {
                last = *k;
            } else {
                *k = last;
            }
        }
        Strategy {
            binning: self.scheme,
            kernels,
        }
    }
}

/// Result of tuning one matrix.
#[derive(Clone, Debug)]
pub struct TunedStrategy {
    /// The winning strategy.
    pub strategy: Strategy,
    /// Its total cycles.
    pub cycles: f64,
    /// Every candidate evaluated (for reports and figures).
    pub candidates: Vec<CandidateResult>,
}

impl TunedStrategy {
    /// The winning candidate's per-bin choices.
    pub fn winning_choices(&self) -> &[BinChoice] {
        let best = self
            .candidates
            .iter()
            .min_by(|a, b| a.cycles.partial_cmp(&b.cycles).unwrap())
            .expect("at least one candidate");
        &best.choices
    }
}

/// The exhaustive oracle tuner.
#[derive(Clone, Debug)]
pub struct Tuner {
    device: GpuDevice,
    config: TunerConfig,
}

impl Tuner {
    /// Tuner with the default (paper + single-bin) search space.
    pub fn new(device: GpuDevice) -> Self {
        Self {
            device,
            config: TunerConfig::default(),
        }
    }

    /// Tuner with an explicit search space.
    pub fn with_config(device: GpuDevice, config: TunerConfig) -> Self {
        Self { device, config }
    }

    /// The search space.
    pub fn config(&self) -> &TunerConfig {
        &self.config
    }

    /// The device strategies are priced on.
    pub fn device(&self) -> &GpuDevice {
        &self.device
    }

    /// Evaluate one binning scheme: per populated bin, run every kernel
    /// and keep the cheapest.
    ///
    /// The matrix is binned **once** per scheme and every populated
    /// bin's row list is expanded **once** (via the same
    /// [`crate::plan`] expansion plans use); all nine kernel candidates
    /// then share those cached row lists instead of re-binning.
    pub fn evaluate_scheme<T: Scalar>(
        &self,
        a: &CsrMatrix<T>,
        scheme: BinningScheme,
    ) -> CandidateResult {
        let bins = bin_matrix(a, scheme);
        let expanded = crate::plan::expand_populated(a, &bins);
        let v = vec![T::ONE; a.n_cols()];
        let mut scratch = vec![T::ZERO; a.n_rows()];
        let mut choices = Vec::new();
        let mut cycles = 0.0;
        for (bin_id, rows, nnz) in expanded {
            let mut best: Option<(KernelId, LaunchStats)> = None;
            for &k in &self.config.kernels {
                let stats = run_kernel(&self.device, a, &rows, k, &v, &mut scratch);
                if best.as_ref().is_none_or(|(_, b)| stats.cycles < b.cycles) {
                    best = Some((k, stats));
                }
            }
            let (kernel, stats) = best.expect("kernel pool is non-empty");
            cycles += stats.cycles;
            choices.push(BinChoice {
                bin_id,
                rows: rows.len(),
                nnz,
                kernel,
                stats,
            });
        }
        CandidateResult {
            scheme,
            cycles,
            choices,
        }
    }

    /// Tune `a`, then compile the winning strategy into an executable
    /// [`SpmvPlan`](crate::plan::SpmvPlan) on `backend` under an explicit
    /// [`PlanConfig`](crate::plan::PlanConfig) — the entry the bandwidth
    /// bench uses to compare format tiers (u32 floor, delta-compressed,
    /// cache-blocked, …) under one identical tuned strategy.
    pub fn plan_on<T: Scalar>(
        &self,
        a: &CsrMatrix<T>,
        backend: Box<dyn crate::exec::ExecBackend<T>>,
        config: crate::plan::PlanConfig,
    ) -> (crate::plan::SpmvPlan<T>, TunedStrategy) {
        let tuned = self.tune(a);
        let plan = crate::plan::SpmvPlan::compile_with(a, tuned.strategy.clone(), backend, config);
        (plan, tuned)
    }

    /// Tune a matrix: evaluate every candidate scheme (in parallel) and
    /// return the best strategy plus the full candidate table.
    pub fn tune<T: Scalar>(&self, a: &CsrMatrix<T>) -> TunedStrategy {
        let mut schemes: Vec<BinningScheme> = self
            .config
            .granularities
            .iter()
            .map(|&u| BinningScheme::Coarse { u })
            .collect();
        if self.config.include_single_bin {
            schemes.push(BinningScheme::Single);
        }
        assert!(!schemes.is_empty(), "tuner needs at least one scheme");
        let results: Vec<CandidateResult> =
            parallel_map_collect_nc(schemes.len(), |i| self.evaluate_scheme(a, schemes[i]));
        let best = results
            .iter()
            .min_by(|x, y| x.cycles.partial_cmp(&y.cycles).unwrap())
            .expect("non-empty");
        TunedStrategy {
            strategy: best.strategy(),
            cycles: best.cycles,
            candidates: results.clone(),
        }
    }
}

/// Search settings for the format-tier axis ([`Tuner::tune_format`]).
#[derive(Clone, Debug)]
pub struct FormatSearch {
    /// Relative cycle margin under which the SimGpu model is considered
    /// too close to call and the near-tied candidates are re-timed on
    /// the native CPU backend (`0.0` disables the measured fallback and
    /// keeps the search fully deterministic).
    pub margin: f64,
    /// Executions per candidate in the measured fallback (the minimum
    /// wall time wins).
    pub measure_iters: usize,
}

impl Default for FormatSearch {
    fn default() -> Self {
        Self {
            margin: 0.10,
            measure_iters: 3,
        }
    }
}

/// One format tier priced by [`Tuner::tune_format`].
#[derive(Clone, Debug)]
pub struct FormatCandidate {
    /// Tier label (`u32-floor`, `compressed`, `specialized`).
    pub name: &'static str,
    /// The plan configuration the tier stands for.
    pub config: PlanConfig,
    /// Modelled cycles of one execution on the SimGpu traffic model.
    pub modelled_cycles: f64,
    /// Modelled DRAM bytes read of that execution.
    pub modelled_bytes: u64,
    /// Bins the tier's gate routed to a structure-specialized kernel.
    pub specialized_bins: usize,
    /// Measured native wall time, if the fallback re-timed this tier.
    pub measured: Option<std::time::Duration>,
}

/// Result of the format-tier search: the winning configuration plus the
/// full candidate table.
#[derive(Clone, Debug)]
pub struct TunedFormat {
    /// Winning tier's label.
    pub name: &'static str,
    /// Winning tier's plan configuration (compile with this).
    pub config: PlanConfig,
    /// Every tier evaluated.
    pub candidates: Vec<FormatCandidate>,
    /// Whether the measured fallback decided the winner (the model
    /// called it within [`FormatSearch::margin`]).
    pub measured_fallback: bool,
}

impl Tuner {
    /// Search the format axis the kernel table enlarged: price
    /// `strategy` under each format tier — u32-floor packing, the
    /// delta-compressed tier, and the structure-specialized tier (the
    /// gate free to pick dense-run/banded/row-run kernels) — on the
    /// SimGpu traffic model, derived from `base` so caller knobs
    /// (chunk, cache budget, structure thresholds) apply to every tier
    /// alike. The cheapest modelled tier wins; when the model puts
    /// contenders within [`FormatSearch::margin`] of the winner, those
    /// tiers are re-timed on [`NativeCpuBackend`] and the minimum
    /// measured wall time decides instead.
    pub fn tune_format<T: Scalar>(
        &self,
        a: &CsrMatrix<T>,
        strategy: &Strategy,
        base: PlanConfig,
        search: &FormatSearch,
    ) -> TunedFormat {
        let tiers: [(&'static str, PlanConfig); 3] = [
            (
                "u32-floor",
                PlanConfig {
                    index: IndexPolicy::Fixed(IndexKind::U32),
                    specialize: false,
                    ..base
                },
            ),
            (
                "compressed",
                PlanConfig {
                    index: IndexPolicy::Auto,
                    specialize: false,
                    ..base
                },
            ),
            (
                "specialized",
                PlanConfig {
                    specialize: true,
                    ..base
                },
            ),
        ];
        let v = vec![T::ONE; a.n_cols()];
        let mut u = vec![T::ZERO; a.n_rows()];
        let mut candidates: Vec<FormatCandidate> = tiers
            .into_iter()
            .map(|(name, config)| {
                let plan = SpmvPlan::compile_with(
                    a,
                    strategy.clone(),
                    Box::new(SimGpuBackend::new(self.device.clone())),
                    config,
                );
                let cost = plan.execute(a, &v, &mut u).expect("sim execution");
                let stats = cost.stats.expect("sim backend prices every launch");
                FormatCandidate {
                    name,
                    config,
                    modelled_cycles: stats.cycles,
                    modelled_bytes: stats.bytes_read,
                    specialized_bins: plan.specialized_bins(),
                    measured: None,
                }
            })
            .collect();
        let best_cycles = candidates
            .iter()
            .map(|c| c.modelled_cycles)
            .fold(f64::INFINITY, f64::min);
        let near: Vec<usize> = candidates
            .iter()
            .enumerate()
            .filter(|(_, c)| c.modelled_cycles <= best_cycles * (1.0 + search.margin))
            .map(|(i, _)| i)
            .collect();
        let measured_fallback = search.margin > 0.0 && near.len() > 1;
        let winner = if measured_fallback {
            // The model can't separate the contenders: measure them.
            for &i in &near {
                let plan = SpmvPlan::compile_with(
                    a,
                    strategy.clone(),
                    Box::new(NativeCpuBackend::default()),
                    candidates[i].config,
                );
                let mut best = std::time::Duration::MAX;
                for _ in 0..search.measure_iters.max(1) {
                    let cost = plan.execute(a, &v, &mut u).expect("native execution");
                    best = best.min(cost.wall);
                }
                candidates[i].measured = Some(best);
            }
            near.iter()
                .copied()
                .min_by_key(|&i| candidates[i].measured.expect("just measured"))
                .expect("at least one near-margin candidate")
        } else {
            candidates
                .iter()
                .enumerate()
                .min_by(|x, y| {
                    x.1.modelled_cycles
                        .partial_cmp(&y.1.modelled_cycles)
                        .unwrap()
                })
                .map(|(i, _)| i)
                .expect("three candidates")
        };
        TunedFormat {
            name: candidates[winner].name,
            config: candidates[winner].config,
            candidates,
            measured_fallback,
        }
    }
}

/// `parallel_map_collect` for non-`Default` results.
fn parallel_map_collect_nc<T: Send + Clone>(n: usize, f: impl Fn(usize) -> T + Sync) -> Vec<T> {
    let slots: Vec<Option<T>> = parallel_map_collect(n, 1, |i| Some(f(i)));
    slots.into_iter().map(Option::unwrap).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use spmv_sparse::gen;
    use spmv_sparse::gen::mixture::RowRegime;

    fn small_config() -> TunerConfig {
        TunerConfig {
            granularities: vec![10, 100, 1000],
            kernels: ALL_KERNELS.to_vec(),
            include_single_bin: true,
        }
    }

    #[test]
    fn tuned_strategy_is_at_least_as_good_as_every_candidate() {
        let a = gen::mixture::<f32>(
            2000,
            3000,
            &[RowRegime::new(1, 4, 0.7), RowRegime::new(100, 400, 0.3)],
            true,
            21,
        );
        let tuner = Tuner::with_config(GpuDevice::kaveri(), small_config());
        let tuned = tuner.tune(&a);
        for c in &tuned.candidates {
            assert!(
                tuned.cycles <= c.cycles + 1e-6,
                "{:?} beats the winner",
                c.scheme
            );
        }
    }

    #[test]
    fn irregular_matrix_gets_multiple_kernels() {
        // Strongly bimodal rows: per-bin selection should differ across
        // bins for at least one evaluated granularity.
        let a = gen::mixture::<f32>(
            3000,
            5000,
            &[RowRegime::new(1, 2, 0.6), RowRegime::new(600, 900, 0.4)],
            true,
            22,
        );
        let tuner = Tuner::with_config(GpuDevice::kaveri(), small_config());
        let tuned = tuner.tune(&a);
        let multi = tuned.candidates.iter().any(|c| {
            let mut kernels: Vec<KernelId> = c.choices.iter().map(|x| x.kernel).collect();
            kernels.dedup();
            kernels.len() > 1
        });
        assert!(multi, "no candidate used more than one kernel");
    }

    #[test]
    fn uniform_short_matrix_prefers_thin_kernels() {
        let a = gen::random_uniform::<f32>(20_000, 20_000, 2, 3, 23);
        let tuner = Tuner::with_config(GpuDevice::kaveri(), small_config());
        let tuned = tuner.tune(&a);
        for c in tuned.winning_choices() {
            assert!(
                c.kernel.threads_per_row() <= 8,
                "bin {} chose {}",
                c.bin_id,
                c.kernel
            );
        }
    }

    #[test]
    fn uniform_long_matrix_prefers_wide_kernels() {
        let a = gen::random_uniform::<f32>(1500, 30_000, 700, 800, 24);
        let tuner = Tuner::with_config(GpuDevice::kaveri(), small_config());
        let tuned = tuner.tune(&a);
        for c in tuned.winning_choices() {
            assert!(
                c.kernel.threads_per_row() >= 32,
                "bin {} chose {}",
                c.bin_id,
                c.kernel
            );
        }
    }

    #[test]
    fn strategy_fills_unpopulated_bins() {
        let a = gen::random_uniform::<f32>(500, 500, 4, 4, 25);
        let tuner = Tuner::with_config(GpuDevice::kaveri(), small_config());
        let tuned = tuner.tune(&a);
        // kernel_for must be total over any bin id.
        for b in 0..crate::binning::MAX_BINS {
            let _ = tuned.strategy.kernel_for(b);
        }
    }

    #[test]
    fn format_search_prices_three_tiers_and_specialization_cuts_modelled_bytes() {
        // Band-complete matrix, classified as streaming so every tier's
        // traffic story is live: the banded fast path must model strictly
        // fewer DRAM bytes than delta-compressed packing, which must
        // model strictly fewer than the u32 floor.
        let a = gen::banded::<f64>(3_000, 4, 7);
        let tuner = Tuner::new(GpuDevice::kaveri());
        let strategy = Strategy::single_kernel(KernelId::Serial);
        let base = PlanConfig {
            llc_bytes: 0,
            ..PlanConfig::default()
        };
        let search = FormatSearch {
            margin: 0.0, // model only: fully deterministic
            measure_iters: 1,
        };
        let tf = tuner.tune_format(&a, &strategy, base, &search);
        assert!(!tf.measured_fallback);
        assert_eq!(tf.candidates.len(), 3);
        let by = |n: &str| tf.candidates.iter().find(|c| c.name == n).expect(n);
        let (u32f, comp, spec) = (by("u32-floor"), by("compressed"), by("specialized"));
        assert!(spec.specialized_bins >= 1, "banded matrix not specialized");
        assert_eq!(u32f.specialized_bins, 0);
        assert_eq!(comp.specialized_bins, 0);
        assert!(
            spec.modelled_bytes < comp.modelled_bytes && comp.modelled_bytes < u32f.modelled_bytes,
            "traffic model not monotone across tiers: {} / {} / {}",
            spec.modelled_bytes,
            comp.modelled_bytes,
            u32f.modelled_bytes
        );
        assert!(tf.candidates.iter().all(|c| c.measured.is_none()));
    }

    #[test]
    fn format_search_measured_fallback_times_near_ties() {
        // A structureless matrix: no tier can win on the model, so a
        // generous margin must route the decision through measured
        // native timings.
        let a = gen::random_uniform::<f64>(800, 800, 4, 4, 5);
        let tuner = Tuner::new(GpuDevice::kaveri());
        let strategy = Strategy::single_kernel(KernelId::Serial);
        let search = FormatSearch {
            margin: 10.0,
            measure_iters: 2,
        };
        let tf = tuner.tune_format(&a, &strategy, PlanConfig::default(), &search);
        assert!(tf.measured_fallback, "generous margin must trigger timing");
        let winner = tf
            .candidates
            .iter()
            .find(|c| c.name == tf.name)
            .expect("winner in table");
        assert!(winner.measured.is_some(), "winner decided without timing");
    }

    #[test]
    fn tuning_is_deterministic() {
        let a = gen::powerlaw::<f32>(1500, 1, 200, 2.2, 26);
        let tuner = Tuner::with_config(GpuDevice::kaveri(), small_config());
        let x = tuner.tune(&a);
        let y = tuner.tune(&a);
        assert_eq!(x.strategy, y.strategy);
        assert_eq!(x.cycles, y.cycles);
    }
}
