//! The pattern-specialized kernel table: a macro-generated
//! `KernelKey → fn-pointer` registry replacing the hand-written
//! width/KB `match` ladders that used to live in [`cpu`].
//!
//! One kernel *family* per payload shape, instantiated at every
//! register-blocked RHS width in [`RHS_WIDTHS`] by [`kernel_table!`]'s
//! nested expansion — adding a family or a width is one token in the
//! macro invocation, never a new `match` arm. Plan compilation asserts
//! registry coverage for every format it emits
//! ([`BinFormat::kernel_family`]), the executors resolve entries once
//! per (bin, RHS-block) outside their parallel regions, and `spmv-lint`
//! sweeps the registry both ways (every reachable key registered, every
//! registered key reachable).
//!
//! Single-vector execution of the specialized families goes through the
//! same registry at `KB = 1` over a stride-1 output view, so there is
//! exactly one kernel body per family.
//!
//! [`cpu`]: crate::kernels::cpu
//! [`BinFormat::kernel_family`]: crate::plan::BinFormat::kernel_family

use super::cpu::BlockWriter;
use crate::plan::BinPayload;
use spmv_sparse::{CsrMatrix, Scalar};

/// The payload-shape axis of the kernel key space: which traversal a
/// bin's entries execute with. [`Csr`](Self::Csr) also serves
/// cache-blocked bins in the batched path — the strip schedule is a
/// single-vector locality optimisation, and both walks consume storage
/// order, so the results are bit-identical either way.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum KernelFamily {
    /// Row-list walk through the CSR arrays (plain and cache-blocked
    /// bins).
    Csr,
    /// Column-major SELL chunk walk over a packed slab.
    Packed,
    /// Contiguous-run traversal: strided dense AXPYs, no per-element
    /// index gathers.
    DenseRun,
    /// Diagonal-offset traversal: the offset list is the only index
    /// metadata.
    Banded,
    /// Identical-row-run traversal: one shared column pattern per run.
    RowRun,
}

impl KernelFamily {
    /// Every family in the registry, in registration order.
    pub const ALL: [KernelFamily; 5] = [
        KernelFamily::Csr,
        KernelFamily::Packed,
        KernelFamily::DenseRun,
        KernelFamily::Banded,
        KernelFamily::RowRun,
    ];

    /// Short label (`csr`, `packed`, `dense-run`, `banded`, `row-run`).
    pub fn label(self) -> &'static str {
        match self {
            KernelFamily::Csr => "csr",
            KernelFamily::Packed => "packed",
            KernelFamily::DenseRun => "dense-run",
            KernelFamily::Banded => "banded",
            KernelFamily::RowRun => "row-run",
        }
    }
}

impl std::fmt::Display for KernelFamily {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// The register-blocked RHS widths every family is instantiated at —
/// exactly the widths [`crate::plan::rhs_blocks`] decomposes a batch
/// into (proven by `verify::check_rhs_blocks`).
pub const RHS_WIDTHS: [usize; 4] = [1, 2, 4, 8];

/// One point of the kernel instantiation matrix: a payload family at a
/// register-blocked RHS width.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct KernelKey {
    /// Payload-shape axis.
    pub family: KernelFamily,
    /// RHS-block width axis (`∈` [`RHS_WIDTHS`]).
    pub kb: usize,
}

impl std::fmt::Display for KernelKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}×{}", self.family, self.kb)
    }
}

/// Everything one table kernel needs to execute one (tile, RHS-block)
/// work item. `start..end` is the tile's span in the bin's own work
/// coordinates: chunk indices for [`KernelFamily::Packed`], positions
/// into `bin_rows` for every other family.
pub struct BatchArgs<'a, T: Scalar> {
    /// The matrix (values are always read from here, in storage order).
    pub a: &'a CsrMatrix<T>,
    /// The bin's **full** dispatch row list (kernels slice it by
    /// `start..end`; run-based kernels need the full list to clip runs).
    pub bin_rows: &'a [u32],
    /// The bin's payload (must match the kernel's family).
    pub payload: &'a BinPayload<T>,
    /// Tile start (inclusive), in the family's work coordinates.
    pub start: usize,
    /// Tile end (exclusive).
    pub end: usize,
    /// The RHS block storage (`x` as a flat row-major slice).
    pub xs: &'a [T],
    /// Row stride of `xs` (`1` for single-vector execution).
    pub x_stride: usize,
    /// First RHS column this work item owns.
    pub c0: usize,
    /// Output writer (stride-1 view of `u` for single-vector execution).
    pub out: BlockWriter<T>,
}

/// A registered kernel: reads its [`BatchArgs`], writes its tile's rows
/// × its RHS block, nothing else.
pub type BatchKernelFn<T> = fn(&BatchArgs<'_, T>);

/// One row of the generated registry.
pub struct KernelEntry<T: Scalar> {
    /// The instantiation point.
    pub key: KernelKey,
    /// The compiled kernel.
    pub run: BatchKernelFn<T>,
}

/// Generate the registry from one `family => body` list × one width
/// list: the outer arm iterates families, the inner arm instantiates
/// each body at every width literal. This is the **only** place the
/// (family × KB) matrix is spelled out.
macro_rules! kernel_table {
    ($( $family:ident => $body:ident ),+ $(,)?) => {
        /// The full generated kernel table: every family at every RHS
        /// width, in deterministic (family, width) order.
        pub fn kernel_table<T: Scalar>() -> Vec<KernelEntry<T>> {
            let mut table = Vec::with_capacity(KernelFamily::ALL.len() * RHS_WIDTHS.len());
            $( kernel_table!(@widths table, $family, $body, 1, 2, 4, 8); )+
            table
        }
    };
    (@widths $table:ident, $family:ident, $body:ident, $( $kb:literal ),+) => {
        $( $table.push(KernelEntry {
            key: KernelKey { family: KernelFamily::$family, kb: $kb },
            run: $body::<T, $kb>,
        }); )+
    };
}

kernel_table! {
    Csr => batch_csr,
    Packed => batch_packed,
    DenseRun => batch_dense_run,
    Banded => batch_banded,
    RowRun => batch_row_run,
}

/// Resolve one instantiation point, `None` for widths outside
/// [`RHS_WIDTHS`]. Builds the table, so resolve once per (bin, block)
/// outside hot loops — the executors do.
pub fn lookup<T: Scalar>(key: KernelKey) -> Option<BatchKernelFn<T>> {
    kernel_table::<T>()
        .into_iter()
        .find(|e| e.key == key)
        .map(|e| e.run)
}

/// The kernel family a payload executes with (the payload side of
/// [`crate::plan::BinFormat::kernel_family`] — the two must agree, and
/// `check_payloads` proves the format/payload pairing).
pub fn payload_family<T: Scalar>(p: &BinPayload<T>) -> KernelFamily {
    match p {
        BinPayload::Csr | BinPayload::Blocked { .. } => KernelFamily::Csr,
        BinPayload::Packed(_) => KernelFamily::Packed,
        BinPayload::DenseRun(_) => KernelFamily::DenseRun,
        BinPayload::Banded(_) => KernelFamily::Banded,
        BinPayload::RowRun(_) => KernelFamily::RowRun,
    }
}

/// CSR family: walk each row's entries once in ascending storage order
/// (bit-identical per column to the single-vector reference) and
/// broadcast every gathered element against the `KB` contiguous x-lanes
/// of the column block.
fn batch_csr<T: Scalar, const KB: usize>(args: &BatchArgs<'_, T>) {
    for &r in &args.bin_rows[args.start..args.end] {
        let (cols, vals) = args.a.row(r as usize);
        let mut sums = [T::ZERO; KB];
        for (&c, &av) in cols.iter().zip(vals) {
            let base = c as usize * args.x_stride + args.c0;
            let xr = &args.xs[base..base + KB];
            for kk in 0..KB {
                sums[kk] = av.mul_add_(xr[kk], sums[kk]);
            }
        }
        // SAFETY: each row id appears in exactly one tile of one bin and
        // this item owns columns `c0..c0 + KB`; the enclosing scope joins
        // before the output is observable again.
        unsafe { args.out.write_block(r as usize, args.c0, sums) };
    }
}

/// Packed family: stream the SELL chunk range through the slab's
/// register-blocked walk.
fn batch_packed<T: Scalar, const KB: usize>(args: &BatchArgs<'_, T>) {
    let BinPayload::Packed(packed) = args.payload else {
        panic!("packed kernel resolved for a non-packed payload");
    };
    packed.with_slab(|slab| {
        packed.spmm_chunks::<KB, _>(
            slab,
            args.start,
            args.end,
            args.xs,
            args.x_stride,
            args.c0,
            // SAFETY: chunk ranges of one bin are disjoint, each packed
            // row belongs to exactly one chunk, and this item owns
            // columns `c0..c0 + KB`; same join argument as `batch_csr`.
            |r, sums| unsafe { args.out.write_block(r, args.c0, sums) },
        );
    });
}

/// Dense-run family: each row executes as a sequence of strided dense
/// AXPYs over its contiguous column runs — values stream in storage
/// order, `x` is read consecutively inside a run, and **no per-element
/// column index is ever loaded**. The run decomposition is proven
/// against the CSR arrays (`DenseRuns::check_against`), so the FMA
/// chain is position-for-position the CSR reference chain.
///
/// Bit-for-bit identity with the CSR reference pins each row to one
/// sequential FMA chain, so at narrow RHS widths the kernel interleaves
/// four rows (four independent chains) whenever four consecutive rows
/// are each a single run of the same length — the shape a banded bin
/// routed here always has. Wider blocks already carry `KB` independent
/// lanes per row.
fn batch_dense_run<T: Scalar, const KB: usize>(args: &BatchArgs<'_, T>) {
    let BinPayload::DenseRun(runs) = args.payload else {
        panic!("dense-run kernel resolved for a non-dense-run payload");
    };
    let row_off = runs.row_off();
    let all_runs = runs.runs();
    let single_run_len = |p: usize| {
        let (o0, o1) = (row_off[p] as usize, row_off[p + 1] as usize);
        (o1 - o0 == 1).then(|| all_runs[o0].1 as usize)
    };
    let mut pos = args.start;
    while pos < args.end {
        // Eight-row stretch path for the single-vector view: eight
        // consecutive single-run rows of equal length are one contiguous
        // CSR values slice (a single run covers the whole row), so the
        // eight dots run with no per-row setup — the OoO window overlaps
        // their independent chains. Per-row order is untouched, so
        // results stay bit-for-bit.
        if KB == 1 && args.x_stride == 1 && pos + 8 <= args.end {
            let r0 = args.bin_rows[pos] as usize;
            let stretch = (1..8).all(|q| args.bin_rows[pos + q] as usize == r0 + q)
                && single_run_len(pos).is_some_and(|len| {
                    len > 0 && (1..8).all(|q| single_run_len(pos + q) == Some(len))
                });
            if stretch {
                let len = single_run_len(pos).unwrap();
                let rp = args.a.row_ptr();
                let v0 = rp[r0];
                debug_assert_eq!(rp[r0 + 8] - v0, 8 * len);
                let vals8 = &args.a.values()[v0..v0 + 8 * len];
                let mut sums = [T::ZERO; 8];
                for q in 0..8 {
                    let start_col = all_runs[row_off[pos + q] as usize].0 as usize;
                    let vrow = &vals8[q * len..(q + 1) * len];
                    let xrow = &args.xs[args.c0 + start_col..args.c0 + start_col + len];
                    let mut s = T::ZERO;
                    for j in 0..len {
                        s = vrow[j].mul_add_(xrow[j], s);
                    }
                    sums[q] = s;
                }
                for (q, s) in sums.into_iter().enumerate() {
                    // SAFETY: same (tile × block) disjointness as
                    // `batch_csr`.
                    unsafe { args.out.write_block(r0 + q, args.c0, [s; KB]) };
                }
                pos += 8;
                continue;
            }
        }
        if KB <= 2 && pos + 4 <= args.end {
            // Quad path: four single-run rows of equal length run their
            // four chains in lockstep.
            let quad_len = (0..4).try_fold(0usize, |want, q| {
                let (o0, o1) = (row_off[pos + q] as usize, row_off[pos + q + 1] as usize);
                if o1 - o0 != 1 {
                    return None;
                }
                let len = all_runs[o0].1 as usize;
                match (q, len == want) {
                    (0, _) => Some(len),
                    (_, true) => Some(want),
                    (_, false) => None,
                }
            });
            if let Some(len) = quad_len {
                let mut rows = [0usize; 4];
                let mut vals: [&[T]; 4] = [&[]; 4];
                let mut bases = [0usize; 4];
                for q in 0..4 {
                    rows[q] = args.bin_rows[pos + q] as usize;
                    vals[q] = args.a.row(rows[q]).1;
                    let start_col = all_runs[row_off[pos + q] as usize].0 as usize;
                    bases[q] = start_col * args.x_stride + args.c0;
                }
                let mut sums = [[T::ZERO; KB]; 4];
                if KB == 1 && args.x_stride == 1 {
                    // Exact-length value and x-window slices: every
                    // bounds check elides against the shared `t < len`
                    // loop bound, leaving four clean FMA chains over
                    // contiguous loads.
                    let v: [&[T]; 4] = std::array::from_fn(|q| &vals[q][..len]);
                    let xw: [&[T]; 4] = std::array::from_fn(|q| &args.xs[bases[q]..bases[q] + len]);
                    for t in 0..len {
                        for q in 0..4 {
                            sums[q][0] = v[q][t].mul_add_(xw[q][t], sums[q][0]);
                        }
                    }
                } else {
                    #[allow(clippy::needless_range_loop)]
                    for t in 0..len {
                        for q in 0..4 {
                            let b = bases[q] + t * args.x_stride;
                            let xr = &args.xs[b..b + KB];
                            let av = vals[q][t];
                            for kk in 0..KB {
                                sums[q][kk] = av.mul_add_(xr[kk], sums[q][kk]);
                            }
                        }
                    }
                }
                for q in 0..4 {
                    // SAFETY: same (tile × block) disjointness as
                    // `batch_csr`.
                    unsafe { args.out.write_block(rows[q], args.c0, sums[q]) };
                }
                pos += 4;
                continue;
            }
        }
        let r = args.bin_rows[pos] as usize;
        let (_, vals) = args.a.row(r);
        let mut sums = [T::ZERO; KB];
        let mut vj = 0usize;
        for &(start_col, len) in &all_runs[row_off[pos] as usize..row_off[pos + 1] as usize] {
            let len = len as usize;
            let vrun = &vals[vj..vj + len];
            vj += len;
            let base = start_col as usize * args.x_stride + args.c0;
            if KB == 1 && args.x_stride == 1 {
                // Single-vector view: the run is a plain dot product over
                // a contiguous `x` window — no per-element slicing.
                let xwin = &args.xs[base..base + len];
                for (&av, &xv) in vrun.iter().zip(xwin) {
                    sums[0] = av.mul_add_(xv, sums[0]);
                }
            } else {
                let mut b = base;
                for &av in vrun {
                    let xr = &args.xs[b..b + KB];
                    for kk in 0..KB {
                        sums[kk] = av.mul_add_(xr[kk], sums[kk]);
                    }
                    b += args.x_stride;
                }
            }
        }
        // SAFETY: same (tile × block) disjointness as `batch_csr`.
        unsafe { args.out.write_block(r, args.c0, sums) };
        pos += 1;
    }
}

/// Banded family: each row's entries are exactly the in-range members of
/// the bin's diagonal-offset set (proven by `BandSet::check_against`),
/// so the kernel iterates offsets with **zero index traffic** — values
/// stream in storage order, which the proof makes ascending-column
/// order.
fn batch_banded<T: Scalar, const KB: usize>(args: &BatchArgs<'_, T>) {
    let BinPayload::Banded(band) = args.payload else {
        panic!("banded kernel resolved for a non-banded payload");
    };
    let offsets = band.offsets();
    let n = args.a.n_cols() as i64;
    let (min_off, max_off) = match (offsets.first(), offsets.last()) {
        (Some(&lo), Some(&hi)) => (lo, hi),
        _ => return,
    };
    let interior = |r: usize| r as i64 + min_off >= 0 && r as i64 + max_off < n;
    let n_off = offsets.len();
    // A complete band is a contiguous offset range, so interior rows read
    // a contiguous `x` window — the strictly-ascending invariant makes
    // the span test sufficient.
    let contiguous = max_off - min_off + 1 == n_off as i64;
    let mut pos = args.start;
    while pos < args.end {
        // Eight-row stretch path for the single-vector view of a dense
        // (contiguous) band: eight **consecutive** interior rows have
        // exactly `n_off` entries each (band-completeness), so their
        // values are one contiguous CSR slice and their x windows slide
        // by one — eight independent FMA chains with no per-row setup.
        // Each row's chain stays in CSR storage order, so results are
        // still bit-for-bit.
        if KB == 1 && args.x_stride == 1 && contiguous && n_off > 0 && pos + 8 <= args.end {
            let r0 = args.bin_rows[pos] as usize;
            let consecutive = (1..8).all(|q| args.bin_rows[pos + q] as usize == r0 + q);
            if consecutive && interior(r0) && interior(r0 + 7) {
                let rp = args.a.row_ptr();
                let v0 = rp[r0];
                debug_assert_eq!(rp[r0 + 8] - v0, 8 * n_off);
                let vals8 = &args.a.values()[v0..v0 + 8 * n_off];
                let xbase = (r0 as i64 + min_off) as usize + args.c0;
                let xw = &args.xs[xbase..xbase + n_off + 7];
                let mut sums = [T::ZERO; 8];
                for q in 0..8 {
                    let vrow = &vals8[q * n_off..(q + 1) * n_off];
                    let xrow = &xw[q..q + n_off];
                    let mut s = T::ZERO;
                    for j in 0..n_off {
                        s = vrow[j].mul_add_(xrow[j], s);
                    }
                    sums[q] = s;
                }
                for (q, s) in sums.into_iter().enumerate() {
                    // SAFETY: same (tile × block) disjointness as
                    // `batch_csr`.
                    unsafe { args.out.write_block(r0 + q, args.c0, [s; KB]) };
                }
                pos += 8;
                continue;
            }
        }
        // Quad path at narrow RHS widths: four interior rows walk the
        // offset list in lockstep — four independent FMA chains (each
        // row's chain stays in CSR storage order, so results are still
        // bit-for-bit) instead of one latency-bound chain.
        if KB <= 2
            && pos + 4 <= args.end
            && (0..4).all(|q| interior(args.bin_rows[pos + q] as usize))
        {
            let mut rows = [0usize; 4];
            let mut vals: [&[T]; 4] = [&[]; 4];
            for q in 0..4 {
                rows[q] = args.bin_rows[pos + q] as usize;
                vals[q] = args.a.row(rows[q]).1;
            }
            let mut sums = [[T::ZERO; KB]; 4];
            if KB == 1 && args.x_stride == 1 && contiguous {
                // Dense band: exact-length value and x-window slices, so
                // every bounds check elides against `j < n_off` and the
                // x loads are contiguous.
                let v: [&[T]; 4] = std::array::from_fn(|q| &vals[q][..n_off]);
                let xw: [&[T]; 4] = std::array::from_fn(|q| {
                    let base = (rows[q] as i64 + min_off) as usize + args.c0;
                    &args.xs[base..base + n_off]
                });
                for j in 0..n_off {
                    for q in 0..4 {
                        sums[q][0] = v[q][j].mul_add_(xw[q][j], sums[q][0]);
                    }
                }
            } else {
                for (j, &o) in offsets.iter().enumerate() {
                    for q in 0..4 {
                        let base = (rows[q] as i64 + o) as usize * args.x_stride + args.c0;
                        let xr = &args.xs[base..base + KB];
                        let av = vals[q][j];
                        for kk in 0..KB {
                            sums[q][kk] = av.mul_add_(xr[kk], sums[q][kk]);
                        }
                    }
                }
            }
            for q in 0..4 {
                // SAFETY: same (tile × block) disjointness as `batch_csr`.
                unsafe { args.out.write_block(rows[q], args.c0, sums[q]) };
            }
            pos += 4;
            continue;
        }
        let r = args.bin_rows[pos] as usize;
        let (_, vals) = args.a.row(r);
        let mut sums = [T::ZERO; KB];
        if interior(r) {
            // Interior row: the proof says every offset lands in range,
            // so the row's values zip the offset list one-to-one — no
            // range branch, no cursor bookkeeping.
            for (&o, &av) in offsets.iter().zip(vals) {
                let base = (r as i64 + o) as usize * args.x_stride + args.c0;
                let xr = &args.xs[base..base + KB];
                for kk in 0..KB {
                    sums[kk] = av.mul_add_(xr[kk], sums[kk]);
                }
            }
        } else {
            // Edge row: walk the offsets with the clip branch, consuming
            // values in storage order (= ascending offsets in range).
            let mut vj = 0usize;
            for &o in offsets {
                let c = r as i64 + o;
                if c < 0 || c >= n {
                    continue;
                }
                let base = c as usize * args.x_stride + args.c0;
                let xr = &args.xs[base..base + KB];
                let av = vals[vj];
                vj += 1;
                for kk in 0..KB {
                    sums[kk] = av.mul_add_(xr[kk], sums[kk]);
                }
            }
        }
        // SAFETY: same (tile × block) disjointness as `batch_csr`.
        unsafe { args.out.write_block(r, args.c0, sums) };
        pos += 1;
    }
}

/// Identical-row-run family: the tile's span is clipped against the
/// proven maximal-run boundaries and each segment loads its column
/// pattern **once** from its first row, streaming every run row's
/// values against it. Any row of a run is a valid pattern source — the
/// proof (`RowRuns::check_against`) says their column lists are
/// identical — so clipping a run at a tile boundary is harmless.
fn batch_row_run<T: Scalar, const KB: usize>(args: &BatchArgs<'_, T>) {
    let BinPayload::RowRun(rr) = args.payload else {
        panic!("row-run kernel resolved for a non-row-run payload");
    };
    if args.start >= args.end {
        return;
    }
    let run_off = rr.run_off();
    // Index of the run containing `start`: boundaries are strictly
    // ascending and begin at 0, so at least one is ≤ start.
    let mut run = run_off.partition_point(|&b| (b as usize) <= args.start) - 1;
    let mut pos = args.start;
    while pos < args.end {
        let seg_end = (run_off[run + 1] as usize).min(args.end);
        let (cols, _) = args.a.row(args.bin_rows[pos] as usize);
        let mut p = pos;
        // Quad path at narrow RHS widths: four rows of the same run share
        // the column pattern, so each gathered `x` element feeds four
        // independent FMA chains (per-row order untouched — still
        // bit-for-bit) and is loaded once instead of four times.
        while KB <= 2 && p + 4 <= seg_end {
            let mut rows = [0usize; 4];
            let mut vals: [&[T]; 4] = [&[]; 4];
            for q in 0..4 {
                rows[q] = args.bin_rows[p + q] as usize;
                vals[q] = args.a.row(rows[q]).1;
            }
            let mut sums = [[T::ZERO; KB]; 4];
            for (j, &c) in cols.iter().enumerate() {
                let base = c as usize * args.x_stride + args.c0;
                let xr = &args.xs[base..base + KB];
                for q in 0..4 {
                    let av = vals[q][j];
                    for kk in 0..KB {
                        sums[q][kk] = av.mul_add_(xr[kk], sums[q][kk]);
                    }
                }
            }
            for q in 0..4 {
                // SAFETY: same (tile × block) disjointness as `batch_csr`.
                unsafe { args.out.write_block(rows[q], args.c0, sums[q]) };
            }
            p += 4;
        }
        // Pair path: short runs (e.g. 3-row blocks) still get two chains
        // per gathered `x` element.
        while KB <= 2 && p + 2 <= seg_end {
            let rows = [args.bin_rows[p] as usize, args.bin_rows[p + 1] as usize];
            let vals = [args.a.row(rows[0]).1, args.a.row(rows[1]).1];
            let mut sums = [[T::ZERO; KB]; 2];
            for (j, &c) in cols.iter().enumerate() {
                let base = c as usize * args.x_stride + args.c0;
                let xr = &args.xs[base..base + KB];
                for q in 0..2 {
                    let av = vals[q][j];
                    for kk in 0..KB {
                        sums[q][kk] = av.mul_add_(xr[kk], sums[q][kk]);
                    }
                }
            }
            for q in 0..2 {
                // SAFETY: same (tile × block) disjointness as `batch_csr`.
                unsafe { args.out.write_block(rows[q], args.c0, sums[q]) };
            }
            p += 2;
        }
        for p in p..seg_end {
            let r = args.bin_rows[p] as usize;
            let (_, vals) = args.a.row(r);
            let mut sums = [T::ZERO; KB];
            for (&c, &av) in cols.iter().zip(vals) {
                let base = c as usize * args.x_stride + args.c0;
                let xr = &args.xs[base..base + KB];
                for kk in 0..KB {
                    sums[kk] = av.mul_add_(xr[kk], sums[kk]);
                }
            }
            // SAFETY: same (tile × block) disjointness as `batch_csr`.
            unsafe { args.out.write_block(r, args.c0, sums) };
        }
        pos = seg_end;
        run += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_covers_every_family_at_every_width() {
        let table = kernel_table::<f64>();
        assert_eq!(table.len(), KernelFamily::ALL.len() * RHS_WIDTHS.len());
        for family in KernelFamily::ALL {
            for kb in RHS_WIDTHS {
                let key = KernelKey { family, kb };
                assert!(lookup::<f64>(key).is_some(), "missing {key}");
                assert!(lookup::<f32>(key).is_some(), "missing {key} (f32)");
            }
        }
    }

    #[test]
    fn unregistered_widths_resolve_to_none() {
        for kb in [0usize, 3, 5, 16] {
            let key = KernelKey {
                family: KernelFamily::Csr,
                kb,
            };
            assert!(lookup::<f64>(key).is_none(), "{key} should be unregistered");
        }
    }

    #[test]
    fn keys_are_unique() {
        let table = kernel_table::<f32>();
        for (i, e) in table.iter().enumerate() {
            for other in &table[i + 1..] {
                assert_ne!(e.key, other.key, "duplicate registry key");
            }
        }
    }
}
