//! Packed-format execution suite: the SELL-packed, fused-dispatch path
//! must be **bit-for-bit** identical to the sequential CSR reference for
//! every kernel class, every binning, and adversarial shapes (empty
//! rows, one dense row among empties, everything in one bin) — and the
//! padding-overflow fallback to CSR must actually fire.

use spmv_autotune::prelude::*;
use spmv_sparse::gen;
use spmv_sparse::gen::mixture::RowRegime;
use spmv_sparse::{CooMatrix, CsrMatrix};

fn native_plan(a: &CsrMatrix<f64>, strategy: Strategy, config: PlanConfig) -> SpmvPlan<f64> {
    SpmvPlan::compile_with(a, strategy, Box::new(NativeCpuBackend::new()), config)
}

fn strategies() -> Vec<Strategy> {
    vec![
        Strategy {
            binning: BinningScheme::Coarse { u: 10 },
            kernels: vec![KernelId::Serial; 8],
        },
        Strategy {
            binning: BinningScheme::Fine,
            kernels: vec![KernelId::Subvector(16); 8],
        },
        Strategy {
            binning: BinningScheme::Hybrid {
                threshold: 16,
                u: 10,
            },
            kernels: vec![KernelId::Vector; 8],
        },
        Strategy::single_kernel(KernelId::Subvector(32)),
    ]
}

/// Seeded fuzz (the PR 2 pattern): packed + fused plans are bit-for-bit
/// identical to the sequential reference across seeds, strategies, and
/// kernel classes. Exact `assert_eq!` — any reordering of a row's
/// accumulation, or any padding slot leaking into a sum, fails here.
#[test]
fn fuzz_packed_plans_bit_identical_to_reference() {
    for seed in 0..12u64 {
        let m = 120 + (seed as usize * 41) % 500;
        let a = gen::mixture::<f64>(
            m,
            m + 60,
            &[
                RowRegime::new(1, 3, 0.4),
                RowRegime::new(6, 24, 0.4),
                RowRegime::new(40, 90, 0.2),
            ],
            true,
            seed,
        );
        let v: Vec<f64> = (0..a.n_cols())
            .map(|i| (((i as u64).wrapping_mul(seed + 5) % 19) as f64) - 9.0)
            .collect();
        let reference = a.spmv_seq_alloc(&v).unwrap();
        for (si, strategy) in strategies().into_iter().enumerate() {
            let plan = native_plan(&a, strategy, PlanConfig::default());
            let mut u = vec![f64::NAN; a.n_rows()];
            plan.execute(&a, &v, &mut u).unwrap();
            assert_eq!(u, reference, "seed {seed} strategy {si} diverges");
        }
    }
}

/// The format decision must not change results: packing on vs off, and
/// fused vs per-bin dispatch, are all bitwise the same.
#[test]
fn packed_and_unpacked_configs_are_bitwise_equal() {
    let a = gen::powerlaw::<f64>(900, 1, 70, 2.1, 17);
    let v: Vec<f64> = (0..a.n_cols())
        .map(|i| ((i * 7) % 23) as f64 - 11.0)
        .collect();
    let configs = [
        PlanConfig::default(),
        PlanConfig {
            pack: false,
            ..PlanConfig::default()
        },
        PlanConfig {
            fused: false,
            ..PlanConfig::default()
        },
        PlanConfig {
            pack: false,
            fused: false,
            ..PlanConfig::default()
        },
        PlanConfig {
            chunk: 4,
            tile_nnz: 64,
            ..PlanConfig::default()
        },
    ];
    let strategy = Strategy {
        binning: BinningScheme::Coarse { u: 10 },
        kernels: vec![KernelId::Subvector(8); 8],
    };
    let mut outputs = Vec::new();
    for config in configs {
        let plan = native_plan(&a, strategy.clone(), config);
        let mut u = vec![0.0f64; a.n_rows()];
        plan.execute(&a, &v, &mut u).unwrap();
        outputs.push((config, u));
    }
    for (config, u) in &outputs[1..] {
        assert_eq!(
            *u, outputs[0].1,
            "config {config:?} diverges from the default"
        );
    }
}

/// Low-variance bins get packed; the recorded per-bin format says so,
/// and verification proves the payloads.
#[test]
fn uniform_bins_actually_pack_and_verify() {
    // Exactly 4 NNZ per row: one bin, zero padding — prime SELL shape.
    let a = gen::random_uniform::<f64>(600, 600, 4, 4, 3);
    let plan = native_plan(
        &a,
        Strategy::single_kernel(KernelId::Serial),
        PlanConfig::default(),
    );
    assert!(plan.packed_bins() >= 1, "uniform matrix failed to pack");
    assert!(!plan.tiles().is_empty(), "fused queue missing");
    for d in plan.dispatch() {
        assert!(
            matches!(d.format, BinFormat::PackedSell { .. }),
            "bin {} stayed CSR on a uniform matrix",
            d.bin_id
        );
    }
    let verified = plan.verify(&a).expect("packed plan must verify");
    let v = vec![1.5f64; a.n_cols()];
    let reference = a.spmv_seq_alloc(&v).unwrap();
    let mut u = vec![0.0f64; a.n_rows()];
    verified.execute_unchecked(&a, &v, &mut u).unwrap();
    assert_eq!(u, reference);
}

/// One dense row among empty rows in a `Single` binning: packing it
/// would pad the slab ~chunk-fold, so the padding gate must fall back to
/// CSR — the padding-overflow fallback the acceptance criteria require.
#[test]
fn padding_overflow_falls_back_to_csr() {
    let mut coo = CooMatrix::<f64>::new(64, 256);
    for j in 0..256 {
        coo.push(0, j, 1.0 + j as f64);
    }
    coo.push(1, 0, 2.0);
    let a = coo.to_csr();
    let plan = native_plan(
        &a,
        Strategy {
            binning: BinningScheme::Single,
            kernels: vec![KernelId::Vector],
        },
        PlanConfig {
            // This test pins the *packing* gate's padding fallback; the
            // dense-run fast path would otherwise (correctly) claim the
            // fully dense row first.
            specialize: false,
            ..PlanConfig::default()
        },
    );
    assert_eq!(plan.dispatch().len(), 1, "Single binning should be one bin");
    assert_eq!(
        plan.dispatch()[0].format,
        BinFormat::Csr,
        "skewed bin must fall back to CSR, not pack with ~64x padding"
    );
    // And the fallback still computes correctly, fused.
    let v: Vec<f64> = (0..a.n_cols()).map(|i| (i % 5) as f64 - 2.0).collect();
    let reference = a.spmv_seq_alloc(&v).unwrap();
    let mut u = vec![f64::NAN; a.n_rows()];
    plan.execute(&a, &v, &mut u).unwrap();
    assert_eq!(u, reference, "fallback path wrong");
    assert!(u[2..].iter().all(|&x| x == 0.0), "empty rows not zeroed");
}

/// Adversarial shapes, all strategies: empty rows everywhere, a dense
/// spike, and everything crammed into the overflow bin.
#[test]
fn adversarial_shapes_stay_bit_identical() {
    let mut shapes: Vec<(&str, CsrMatrix<f64>)> = Vec::new();
    shapes.push(("all-empty", CsrMatrix::zeros(300, 300)));
    {
        let mut coo = CooMatrix::<f64>::new(200, 300);
        for j in 0..300 {
            coo.push(77, j, 0.5 + j as f64);
        }
        shapes.push(("one-dense-row", coo.to_csr()));
    }
    // Every row lands in the top (overflow) bin of a Coarse{u:10}
    // binning: rows of ~200 NNZ with MAX_BINS-sized granularity.
    shapes.push((
        "all-rows-overflow-bin",
        gen::random_uniform::<f64>(150, 400, 190, 210, 9),
    ));
    for (name, a) in &shapes {
        let v: Vec<f64> = (0..a.n_cols()).map(|i| ((i % 11) as f64) - 5.0).collect();
        let reference = a.spmv_seq_alloc(&v).unwrap();
        for (si, strategy) in strategies().into_iter().enumerate() {
            let plan = native_plan(a, strategy, PlanConfig::default());
            let mut u = vec![f64::NAN; a.n_rows()];
            plan.execute(a, &v, &mut u).unwrap();
            assert_eq!(&u, &reference, "{name} strategy {si} diverges");
        }
    }
}

/// Value-only updates through a verified plan refresh the packed slabs:
/// the `values_id` generation must invalidate cached values, on both the
/// checked and unchecked paths.
#[test]
fn packed_slabs_track_value_updates() {
    let mut a = gen::random_uniform::<f64>(500, 500, 3, 9, 21);
    let verified = native_plan(
        &a,
        Strategy::single_kernel(KernelId::Serial),
        PlanConfig::default(),
    )
    .verify(&a)
    .unwrap();
    assert!(verified.plan().packed_bins() >= 1);
    let v: Vec<f64> = (0..500).map(|i| (i % 7) as f64).collect();
    for round in 0..4u64 {
        a.fill_values_with(|k| ((k as u64).wrapping_mul(round + 2) % 13) as f64 - 6.0);
        let reference = a.spmv_seq_alloc(&v).unwrap();
        let mut u = vec![0.0f64; 500];
        verified.execute_unchecked(&a, &v, &mut u).unwrap();
        assert_eq!(u, reference, "round {round}: stale packed values");
    }
}

/// Aggregate storage blow-up of a plan's packed payloads.
fn packed_padding(plan: &SpmvPlan<f64>) -> f64 {
    let (mut slots, mut nnz) = (0usize, 0usize);
    for p in plan.payloads() {
        if let BinPayload::Packed(packed) = p {
            slots += packed.slots();
            nnz += packed.nnz();
        }
    }
    if nnz == 0 {
        1.0
    } else {
        slots as f64 / nnz as f64
    }
}

/// Regression for the Ga3As3H12 slowdown: long irregular rows (spread
/// 30–1400 NNZ) packed at a fixed C = 8 cost 1.156x padding and pushed
/// the packed path below CSR. The adaptive chunk pick (`chunk: 0`) must
/// choose C per bin from the row-length spread: on every bin it packs,
/// its padding is no worse than a forced C = 8 layout of the same rows,
/// on at least one bin strictly better, the aggregate stays under 1.10,
/// and results remain bit-identical.
#[test]
fn adaptive_chunk_tames_long_irregular_rows() {
    // Ga3As3H12's regime mix (suite entry), scaled down for test time.
    // Few rows per bin relative to the length spread is exactly the
    // shape where a wide fixed C pads heavily.
    let a = gen::mixture::<f64>(
        260,
        1_500,
        &[
            RowRegime::new(30, 100, 0.60),
            RowRegime::new(100, 300, 0.32),
            RowRegime::new(300, 1_400, 0.08),
        ],
        true,
        41,
    );
    let adaptive = native_plan(
        &a,
        Strategy {
            binning: BinningScheme::Coarse { u: 10 },
            kernels: vec![KernelId::Subvector(16); 8],
        },
        PlanConfig::default(),
    );
    assert!(adaptive.packed_bins() >= 1, "adaptive pick dropped packing");
    let mut strictly_better = 0usize;
    let (mut slots_a, mut slots_f, mut nnz_packed) = (0usize, 0usize, 0usize);
    for (d, p) in adaptive.dispatch().iter().zip(adaptive.payloads()) {
        let BinPayload::Packed(packed) = p else {
            continue;
        };
        let fixed8 = spmv_sparse::PackedSell::from_rows(&a, &d.rows, 8);
        assert!(
            packed.padding_ratio() <= fixed8.padding_ratio() + 1e-12,
            "bin {}: adaptive C={} pads {:.3}, fixed-8 pads {:.3}",
            d.bin_id,
            packed.chunk(),
            packed.padding_ratio(),
            fixed8.padding_ratio()
        );
        if packed.padding_ratio() < fixed8.padding_ratio() - 1e-12 {
            strictly_better += 1;
        }
        slots_a += packed.slots();
        slots_f += fixed8.slots();
        nnz_packed += packed.nnz();
    }
    assert!(
        strictly_better >= 1,
        "adaptive pick never beat fixed-8 — regression case lost its bite"
    );
    // Aggregate over the packed bins: strictly below the fixed-8 layout
    // of the same rows, and under the 1.15 bound the Ga3As3H12 case
    // (1.156 at fixed C = 8) violated.
    let (pa, pf) = (
        slots_a as f64 / nnz_packed as f64,
        slots_f as f64 / nnz_packed as f64,
    );
    assert!(
        pa < pf,
        "adaptive aggregate {pa:.3} not below fixed-8 {pf:.3}"
    );
    assert!(pa <= 1.15, "adaptive padding {pa:.3} above the 1.15 bound");
    assert!(packed_padding(&adaptive) <= 1.15);
    let v: Vec<f64> = (0..a.n_cols()).map(|i| ((i % 13) as f64) - 6.0).collect();
    let reference = a.spmv_seq_alloc(&v).unwrap();
    let mut u = vec![f64::NAN; a.n_rows()];
    adaptive
        .verify(&a)
        .unwrap()
        .execute(&a, &v, &mut u)
        .unwrap();
    assert_eq!(u, reference, "adaptive-chunk plan diverges");
}

/// `check_payloads` rejects tampered plans: a recorded format that does
/// not match the materialised payload, and tile queues that overlap or
/// leave gaps.
#[test]
fn check_payloads_rejects_mismatch_and_bad_tiles() {
    let a = gen::random_uniform::<f64>(80, 80, 2, 5, 8);
    let rows: Vec<u32> = (0..80).collect();
    let nnz = a.nnz();
    let packed = spmv_sparse::PackedSell::from_rows(&a, &rows, 8);
    let n_chunks = packed.n_chunks();
    let dispatch = vec![BinDispatch {
        bin_id: 0,
        kernel: KernelId::Serial,
        rows,
        nnz,
        format: BinFormat::PackedSell {
            chunk: 8,
            index: packed.index_kind(),
        },
    }];
    let good_tiles = vec![Tile {
        bin: 0,
        start: 0,
        end: n_chunks,
    }];

    // Format recorded as packed, payload is CSR.
    let wrong_payload: Vec<BinPayload<f64>> = vec![BinPayload::Csr];
    assert!(matches!(
        check_payloads(&a, &dispatch, &wrong_payload, &good_tiles),
        Err(VerifyError::PackedPayloadInvalid { .. })
    ));

    // Healthy payload + healthy tiles pass.
    let payloads = vec![BinPayload::Packed(packed)];
    check_payloads(&a, &dispatch, &payloads, &good_tiles).unwrap();

    // A gap in the tile queue is caught.
    let gappy = vec![Tile {
        bin: 0,
        start: 1,
        end: n_chunks,
    }];
    assert!(matches!(
        check_payloads(&a, &dispatch, &payloads, &gappy),
        Err(VerifyError::TilesNotPartition { .. })
    ));

    // Overlapping tiles are caught.
    let overlapping = vec![
        Tile {
            bin: 0,
            start: 0,
            end: n_chunks,
        },
        Tile {
            bin: 0,
            start: n_chunks - 1,
            end: n_chunks,
        },
    ];
    assert!(matches!(
        check_payloads(&a, &dispatch, &payloads, &overlapping),
        Err(VerifyError::TilesNotPartition { .. })
    ));

    // A payload packed from the wrong row set is caught.
    let half_rows: Vec<u32> = (0..40).collect();
    let wrong_rows = vec![BinPayload::Packed(spmv_sparse::PackedSell::from_rows(
        &a, &half_rows, 8,
    ))];
    assert!(matches!(
        check_payloads(&a, &dispatch, &wrong_rows, &good_tiles),
        Err(VerifyError::PackedPayloadInvalid { .. })
    ));
}
