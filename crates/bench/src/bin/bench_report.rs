//! CSR-vs-packed throughput report: runs the row-parallel CSR kernel and
//! the packed (SELL + fused dispatch) compiled plan over the Table II
//! suite and emits `BENCH_packed.json` with GFLOP/s per matrix.
//!
//! Regenerate with `cargo run --release -p spmv-bench --bin bench_report`.
//!
//! Knobs: `SPMV_BENCH_ITERS` (timed iterations, default 20),
//! `SPMV_BENCH_OUT` (output path, default `BENCH_packed.json`),
//! `SPMV_BENCH_TINY=1` (three small synthetic matrices instead of the
//! full suite — the CI smoke mode: "runs and emits valid JSON").

use spmv_autotune::kernels::cpu::spmv_row_parallel;
use spmv_autotune::prelude::*;
use spmv_bench::setup::{env_usize, load_suite, scaling_efficiency, sweep_threads};
use spmv_sparse::{gen, CsrMatrix};
use std::fmt::Write as _;
use std::time::Instant;

struct SweepPoint {
    threads: usize,
    gflops: f64,
}

struct Row {
    name: String,
    m: usize,
    n: usize,
    nnz: usize,
    csr_gflops: f64,
    packed_gflops: f64,
    packed_bins: usize,
    csr_bins: usize,
    padding_ratio: f64,
    index_bpn: f64,
    total_bpn: f64,
    sweep: Vec<SweepPoint>,
}

fn time_loop(iters: usize, mut f: impl FnMut()) -> f64 {
    for _ in 0..2 {
        f(); // warm-up: page in slabs, populate value caches
    }
    // Best of three repetitions: the minimum is the standard robust
    // estimator for throughput on a machine with background noise.
    let mut best = f64::INFINITY;
    for _ in 0..3 {
        let t0 = Instant::now();
        for _ in 0..iters {
            f();
        }
        best = best.min(t0.elapsed().as_secs_f64());
    }
    best
}

fn gflops(nnz: usize, iters: usize, secs: f64) -> f64 {
    if secs <= 0.0 {
        return 0.0;
    }
    2.0 * nnz as f64 * iters as f64 / secs / 1e9
}

fn measure(name: &str, a: &CsrMatrix<f32>, iters: usize) -> Row {
    let v: Vec<f32> = (0..a.n_cols()).map(|i| ((i % 9) as f32) - 4.0).collect();
    let mut u = vec![0.0f32; a.n_rows()];

    let csr_secs = time_loop(iters, || {
        spmv_row_parallel(a, &v, &mut u).unwrap();
    });
    let csr_ref = u.clone();

    let strategy = Strategy {
        binning: BinningScheme::Coarse { u: 10 },
        kernels: vec![KernelId::Subvector(8); 8],
    };
    // Verify once at compile time, then time the verified fast path —
    // the steady-state hot loop of an iterative solver (the per-call
    // O(m) pattern fingerprint belongs to compile/verify, not to the
    // inner iteration this report measures).
    let verified = SpmvPlan::compile(a, strategy, Box::new(NativeCpuBackend::new()))
        .verify(a)
        .expect("packed plan must verify");
    let packed_secs = time_loop(iters, || {
        verified.execute_unchecked(a, &v, &mut u).unwrap();
    });
    assert_eq!(u, csr_ref, "{name}: packed result diverges from CSR");

    let plan = verified.plan();
    let (mut slots, mut packed_nnz) = (0usize, 0usize);
    for p in plan.payloads() {
        if let BinPayload::Packed(packed) = p {
            slots += packed.slots();
            packed_nnz += packed.nnz();
        }
    }
    let padding_ratio = if packed_nnz == 0 {
        1.0
    } else {
        slots as f64 / packed_nnz as f64
    };
    let traffic = plan.traffic();

    // Thread sweep over the sharded runtime: one plan per point, cut
    // into `t` shards and executed by `t` workers, so the scaling curve
    // measures exactly what the topology-aware executor ships.
    let mut sweep = Vec::new();
    for t in sweep_threads() {
        let config = PlanConfig {
            shards: t,
            ..PlanConfig::default()
        };
        let strategy = Strategy {
            binning: BinningScheme::Coarse { u: 10 },
            kernels: vec![KernelId::Subvector(8); 8],
        };
        let verified = SpmvPlan::compile_with(
            a,
            strategy,
            Box::new(NativeCpuBackend::new().with_workers(t)),
            config,
        )
        .verify(a)
        .expect("sharded plan must verify");
        let secs = time_loop(iters, || {
            verified.execute_unchecked(a, &v, &mut u).unwrap();
        });
        assert_eq!(u, csr_ref, "{name}: sharded ({t} threads) diverges");
        sweep.push(SweepPoint {
            threads: t,
            gflops: gflops(a.nnz(), iters, secs),
        });
    }

    Row {
        name: name.to_string(),
        m: a.n_rows(),
        n: a.n_cols(),
        nnz: a.nnz(),
        csr_gflops: gflops(a.nnz(), iters, csr_secs),
        packed_gflops: gflops(a.nnz(), iters, packed_secs),
        packed_bins: plan.packed_bins(),
        csr_bins: plan.dispatch().len() - plan.packed_bins(),
        padding_ratio,
        index_bpn: traffic.index_bytes_per_nnz(),
        total_bpn: traffic.total_bytes_per_nnz(),
        sweep,
    }
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn main() {
    let iters = env_usize("SPMV_BENCH_ITERS", 20);
    let tiny = std::env::var("SPMV_BENCH_TINY").is_ok_and(|s| s == "1");
    let out_path =
        std::env::var("SPMV_BENCH_OUT").unwrap_or_else(|_| "BENCH_packed.json".to_string());

    let cases: Vec<(String, CsrMatrix<f32>)> = if tiny {
        vec![
            (
                "tiny-uniform4".into(),
                gen::random_uniform::<f32>(4_000, 4_000, 4, 4, 1),
            ),
            ("tiny-banded7".into(), gen::banded::<f32>(4_000, 3, 2)),
            (
                "tiny-powerlaw".into(),
                gen::powerlaw::<f32>(3_000, 1, 150, 2.1, 3),
            ),
            // Dense-ish rows with enough work per tile that the thread
            // sweep has something to scale — the CI smoke gate asserts
            // its 2-thread efficiency.
            (
                "tiny-scale16".into(),
                gen::random_uniform::<f32>(20_000, 20_000, 16, 16, 7),
            ),
        ]
    } else {
        load_suite()
            .into_iter()
            .map(|c| (c.meta.name.to_string(), c.matrix))
            .collect()
    };

    let mut rows = Vec::new();
    for (name, a) in &cases {
        eprintln!(
            "  benchmarking {name} ({} x {}, {} nnz) …",
            a.n_rows(),
            a.n_cols(),
            a.nnz()
        );
        rows.push(measure(name, a, iters));
    }

    let mut json = String::new();
    writeln!(json, "{{").unwrap();
    writeln!(json, "  \"bench\": \"packed_exec\",").unwrap();
    writeln!(
        json,
        "  \"hardware_threads\": {},",
        spmv_parallel::machine_threads()
    )
    .unwrap();
    writeln!(json, "  \"threads\": {},", spmv_parallel::num_threads()).unwrap();
    writeln!(json, "  \"iters\": {iters},").unwrap();
    writeln!(json, "  \"tiny\": {tiny},").unwrap();
    writeln!(json, "  \"matrices\": [").unwrap();
    for (i, r) in rows.iter().enumerate() {
        let speedup = if r.csr_gflops > 0.0 {
            r.packed_gflops / r.csr_gflops
        } else {
            0.0
        };
        write!(
            json,
            "    {{\"name\": \"{}\", \"m\": {}, \"n\": {}, \"nnz\": {}, \
             \"csr_gflops\": {:.3}, \"packed_gflops\": {:.3}, \"speedup\": {:.3}, \
             \"packed_bins\": {}, \"csr_bins\": {}, \"padding_ratio\": {:.4}, \
             \"index_bytes_per_nnz\": {:.4}, \"total_bytes_per_nnz\": {:.4}, \
             \"sweep\": [",
            json_escape(&r.name),
            r.m,
            r.n,
            r.nnz,
            r.csr_gflops,
            r.packed_gflops,
            speedup,
            r.packed_bins,
            r.csr_bins,
            r.padding_ratio,
            r.index_bpn,
            r.total_bpn,
        )
        .unwrap();
        let base = r.sweep.first().map(|p| p.gflops).unwrap_or(0.0);
        for (j, p) in r.sweep.iter().enumerate() {
            write!(
                json,
                "{}{{\"threads\": {}, \"gflops\": {:.3}, \"scaling_efficiency\": {:.3}}}",
                if j > 0 { ", " } else { "" },
                p.threads,
                p.gflops,
                scaling_efficiency(p.threads, p.gflops, base),
            )
            .unwrap();
        }
        write!(json, "]}}").unwrap();
        writeln!(json, "{}", if i + 1 < rows.len() { "," } else { "" }).unwrap();
    }
    writeln!(json, "  ]").unwrap();
    writeln!(json, "}}").unwrap();

    std::fs::write(&out_path, &json).expect("write report");
    println!("{json}");
    eprintln!("wrote {out_path}");
}
