//! The end-to-end runtime (Figure 3): extract features → predict a
//! strategy with the trained rule-sets → bin → launch the selected kernel
//! per bin.
//!
//! All execution flows through the plan/execute split:
//! [`AutoSpmv::plan`] compiles a [`SpmvPlan`] once per sparsity pattern
//! and iterative callers execute it repeatedly; the one-shot entry points
//! ([`run_strategy`], [`run_single_kernel`], [`AutoSpmv::run`]) are thin
//! wrappers that compile a throwaway plan and execute it once.

use crate::exec::{ExecBackend, LaunchCost, NativeCpuBackend, SimGpuBackend};
use crate::kernels::KernelId;
use crate::plan::SpmvPlan;
use crate::strategy::Strategy;
use crate::training::TrainedModel;
use crate::tuner::Tuner;
use spmv_gpusim::{GpuDevice, LaunchStats};
use spmv_sparse::{CsrMatrix, MatrixFeatures, Scalar};

/// Execute an explicit [`Strategy`] on the simulated device: one kernel
/// launch per populated bin, costs accumulated.
///
/// One-shot convenience over [`SpmvPlan`] — compiles and executes a plan
/// in one call. Iterative callers should compile once and reuse.
pub fn run_strategy<T: Scalar>(
    device: &GpuDevice,
    a: &CsrMatrix<T>,
    strategy: &Strategy,
    v: &[T],
    u: &mut [T],
) -> LaunchStats {
    let plan = SpmvPlan::compile(
        a,
        strategy.clone(),
        Box::new(SimGpuBackend::new(device.clone())),
    );
    let cost = plan
        .execute(a, v, u)
        .expect("plan compiled for this matrix");
    cost.stats.unwrap_or_default()
}

/// The "default SpMV using only one single kernel" of Figure 6: all rows
/// in one bin, one launch.
pub fn run_single_kernel<T: Scalar>(
    device: &GpuDevice,
    a: &CsrMatrix<T>,
    kernel: KernelId,
    v: &[T],
    u: &mut [T],
) -> LaunchStats {
    run_strategy(device, a, &Strategy::single_kernel(kernel), v, u)
}

/// How [`AutoSpmv`] picks strategies.
pub enum Selector {
    /// Exhaustive search at run time (the oracle; expensive but optimal
    /// within the search space).
    Oracle(Tuner),
    /// The paper's approach: one prediction pass through the two-stage
    /// trained model.
    Model(TrainedModel),
}

/// The auto-tuned SpMV runtime.
pub struct AutoSpmv {
    device: GpuDevice,
    selector: Selector,
}

/// What [`AutoSpmv::run`] produces besides the output vector.
#[derive(Clone, Debug)]
pub struct AutoRunReport {
    /// The strategy that was executed.
    pub strategy: Strategy,
    /// Accumulated cost of every bin launch.
    pub stats: LaunchStats,
    /// The features extracted for prediction.
    pub features: MatrixFeatures,
}

impl AutoSpmv {
    /// Auto-tuner that runs the oracle search per matrix.
    pub fn with_oracle(device: GpuDevice) -> Self {
        Self {
            selector: Selector::Oracle(Tuner::new(device.clone())),
            device,
        }
    }

    /// Auto-tuner driven by an explicitly configured oracle tuner (e.g.
    /// a reduced search space for interactive use).
    pub fn with_tuner(tuner: Tuner) -> Self {
        Self {
            device: tuner.device().clone(),
            selector: Selector::Oracle(tuner),
        }
    }

    /// Auto-tuner driven by a trained model (the paper's deployment
    /// mode).
    pub fn with_model(device: GpuDevice, model: TrainedModel) -> Self {
        Self {
            device,
            selector: Selector::Model(model),
        }
    }

    /// The device launches are priced on.
    pub fn device(&self) -> &GpuDevice {
        &self.device
    }

    /// Pick a strategy for `a` without executing it.
    pub fn select<T: Scalar>(&self, a: &CsrMatrix<T>) -> Strategy {
        match &self.selector {
            Selector::Oracle(tuner) => tuner.tune(a).strategy,
            Selector::Model(model) => model.predict_strategy(a),
        }
    }

    /// Compile a plan for `a` on the simulated GPU: select a strategy,
    /// freeze features and bins, and return a reusable [`SpmvPlan`].
    /// The intended entry point for iterative solvers.
    pub fn plan<T: Scalar>(&self, a: &CsrMatrix<T>) -> SpmvPlan<T> {
        self.plan_on(a, Box::new(SimGpuBackend::new(self.device.clone())))
    }

    /// Compile a plan executing natively on the CPU thread pool (same
    /// strategy selection; launches run real multithreaded kernels).
    pub fn plan_native<T: Scalar>(&self, a: &CsrMatrix<T>) -> SpmvPlan<T> {
        self.plan_on(a, Box::new(NativeCpuBackend::new()))
    }

    /// Compile a plan on an explicit backend.
    pub fn plan_on<T: Scalar>(
        &self,
        a: &CsrMatrix<T>,
        backend: Box<dyn ExecBackend<T>>,
    ) -> SpmvPlan<T> {
        SpmvPlan::compile(a, self.select(a), backend)
    }

    /// Full pipeline: select, bin, execute, report. One-shot wrapper
    /// over [`AutoSpmv::plan`] — iterative callers should plan once.
    pub fn run<T: Scalar>(&self, a: &CsrMatrix<T>, v: &[T], u: &mut [T]) -> AutoRunReport {
        let plan = self.plan(a);
        let cost = plan
            .execute(a, v, u)
            .expect("plan compiled for this matrix");
        AutoRunReport {
            strategy: plan.strategy().clone(),
            stats: cost.stats.unwrap_or_default(),
            features: plan.features().clone(),
        }
    }
}

/// Heterogeneous-scheduling sketch (§VI, future work): bins whose rows
/// carry little work are routed to the native CPU backend while heavy
/// bins stay on the simulated GPU. Returns the GPU launch cost and the
/// measured CPU wall time separately — they run on different clocks and
/// the paper leaves their overlap to future work.
///
/// Both sides go through [`ExecBackend::launch`] with the strategy's
/// kernel for each bin, so CPU-routed bins get the same strategy-aware,
/// multithreaded treatment as GPU-routed ones.
pub fn run_hetero<T: Scalar>(
    device: &GpuDevice,
    a: &CsrMatrix<T>,
    strategy: &Strategy,
    cpu_bin_nnz_limit: usize,
    v: &[T],
    u: &mut [T],
) -> (LaunchStats, std::time::Duration) {
    let gpu_backend = SimGpuBackend::new(device.clone());
    let cpu_backend = NativeCpuBackend::new();
    let bins = crate::binning::bin_matrix(a, strategy.binning);
    let mut gpu = LaunchCost::default();
    let mut cpu = LaunchCost::default();
    for (bin_id, rows, nnz) in crate::plan::expand_populated(a, &bins) {
        let kernel = strategy.kernel_for(bin_id);
        if nnz <= cpu_bin_nnz_limit {
            cpu.accumulate(&cpu_backend.launch(a, &rows, kernel, v, u));
        } else {
            gpu.accumulate(&gpu_backend.launch(a, &rows, kernel, v, u));
        }
    }
    (gpu.stats.unwrap_or_default(), cpu.wall)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::binning::BinningScheme;
    use crate::kernels::ALL_KERNELS;
    use crate::tuner::TunerConfig;
    use spmv_sparse::gen;
    use spmv_sparse::gen::mixture::RowRegime;
    use spmv_sparse::scalar::approx_eq;

    fn irregular() -> CsrMatrix<f32> {
        gen::mixture(
            2500,
            4000,
            &[
                RowRegime::new(1, 3, 0.6),
                RowRegime::new(20, 60, 0.3),
                RowRegime::new(400, 800, 0.1),
            ],
            true,
            31,
        )
    }

    #[test]
    fn run_strategy_computes_correct_result() {
        let a = irregular();
        let v: Vec<f32> = (0..a.n_cols()).map(|i| (i % 5) as f32).collect();
        let reference = a.spmv_seq_alloc(&v).unwrap();
        let device = GpuDevice::kaveri();
        let tuner = Tuner::with_config(
            device.clone(),
            TunerConfig {
                granularities: vec![10, 100],
                kernels: ALL_KERNELS.to_vec(),
                include_single_bin: false,
            },
        );
        let tuned = tuner.tune(&a);
        let mut u = vec![0.0f32; a.n_rows()];
        let stats = run_strategy(&device, &a, &tuned.strategy, &v, &mut u);
        assert!(stats.cycles > 0.0);
        for i in 0..a.n_rows() {
            assert!(approx_eq(u[i], reference[i], a.row_nnz(i)), "row {i}");
        }
    }

    #[test]
    fn oracle_auto_beats_both_default_kernels() {
        // The Figure 6 claim, at small scale: kernel-auto is never worse
        // than kernel-serial or kernel-vector on an irregular matrix.
        let a = irregular();
        let v = vec![1.0f32; a.n_cols()];
        let device = GpuDevice::kaveri();
        let auto = AutoSpmv::with_oracle(device.clone());
        let mut u = vec![0.0f32; a.n_rows()];
        let report = auto.run(&a, &v, &mut u);
        let mut u2 = vec![0.0f32; a.n_rows()];
        let serial = run_single_kernel(&device, &a, KernelId::Serial, &v, &mut u2);
        let vector = run_single_kernel(&device, &a, KernelId::Vector, &v, &mut u2);
        assert!(
            report.stats.cycles <= serial.cycles,
            "auto {} !<= serial {}",
            report.stats.cycles,
            serial.cycles
        );
        assert!(
            report.stats.cycles <= vector.cycles,
            "auto {} !<= vector {}",
            report.stats.cycles,
            vector.cycles
        );
    }

    #[test]
    fn single_kernel_runner_matches_reference() {
        let a = irregular();
        let v = vec![0.5f32; a.n_cols()];
        let reference = a.spmv_seq_alloc(&v).unwrap();
        let device = GpuDevice::kaveri();
        for k in ALL_KERNELS {
            let mut u = vec![0.0f32; a.n_rows()];
            run_single_kernel(&device, &a, k, &v, &mut u);
            for i in 0..a.n_rows() {
                assert!(approx_eq(u[i], reference[i], a.row_nnz(i)), "{k} row {i}");
            }
        }
    }

    #[test]
    fn hetero_split_computes_correct_result() {
        let a = irregular();
        let v: Vec<f32> = (0..a.n_cols()).map(|i| ((i % 3) as f32) - 1.0).collect();
        let reference = a.spmv_seq_alloc(&v).unwrap();
        let device = GpuDevice::kaveri();
        let strategy = Strategy {
            binning: BinningScheme::Coarse { u: 10 },
            kernels: vec![KernelId::Serial; 100],
        };
        let mut u = vec![0.0f32; a.n_rows()];
        let (gpu, cpu_time) = run_hetero(&device, &a, &strategy, 5_000, &v, &mut u);
        let _ = cpu_time;
        for i in 0..a.n_rows() {
            assert!(approx_eq(u[i], reference[i], a.row_nnz(i)), "row {i}");
        }
        // Some bins must have stayed on the GPU (the long-row bins).
        assert!(gpu.workgroups > 0);
    }

    #[test]
    fn report_carries_features_and_strategy() {
        let a = irregular();
        let v = vec![1.0f32; a.n_cols()];
        let auto = AutoSpmv::with_oracle(GpuDevice::kaveri());
        let mut u = vec![0.0f32; a.n_rows()];
        let report = auto.run(&a, &v, &mut u);
        assert_eq!(report.features.m, a.n_rows());
        assert!(!report.strategy.kernels.is_empty());
    }
}
