//! Level-scheduled triangular-solve throughput report: times the
//! certified forward-SpTRSV plan over every level-granularity setting —
//! every level parallel (maximum barriers), the shipped auto merge, and
//! everything serial (zero barriers) — across the thread sweep, and
//! emits `BENCH_solve.json` with the level structure (levels, steps,
//! barriers per row, parallel-row share), GFLOP/s, and scaling
//! efficiency.
//!
//! Every timed plan is asserted bit-for-bit against the sequential
//! [`spmv_sparse::solve::sptrsv_seq`] reference first, and each
//! matrix's SymGS pipeline is asserted bit-for-bit against
//! [`spmv_sparse::solve::symgs_seq`] at the widest thread count.
//!
//! Regenerate with `cargo run --release -p spmv-bench --bin bench_solve`.
//!
//! Knobs: `SPMV_BENCH_ITERS` (timed iterations, default 20),
//! `SPMV_BENCH_SOLVE_OUT` (output path, default `BENCH_solve.json`),
//! `SPMV_BENCH_TINY=1` (three small synthetic matrices — the CI smoke
//! mode).

use spmv_autotune::prelude::*;
use spmv_bench::setup::{env_usize, load_suite, scaling_efficiency, sweep_threads};
use spmv_sparse::solve::{sptrsv_seq, symgs_seq, SolveDirection};
use spmv_sparse::{gen, CooMatrix, CsrMatrix};
use std::fmt::Write as _;
use std::time::Instant;

/// The level-granularity settings compared (`min_parallel_rows` values):
/// `parallel-all` schedules every level as a barrier-stepped parallel
/// step, `auto` is the shipped merge heuristic, `serial-all` collapses
/// the whole schedule into one barrier-free serial chunk.
fn granularities() -> Vec<(&'static str, usize)> {
    vec![("parallel-all", 1), ("auto", 0), ("serial-all", usize::MAX)]
}

/// Lower-triangularise `a`: keep its strictly-lower entries, clip to
/// square, and plant a well-conditioned diagonal. The level profile is
/// inherited from `a`'s sparsity pattern.
fn lower_with_diag(a: &CsrMatrix<f32>) -> CsrMatrix<f32> {
    let n = a.n_rows().min(a.n_cols());
    let mut coo = CooMatrix::<f32>::new(n, n);
    for i in 0..n {
        for k in a.row_ptr()[i]..a.row_ptr()[i + 1] {
            let c = a.col_idx()[k] as usize;
            if c < i {
                coo.push(i, c, a.values()[k]);
            }
        }
        coo.push(i, i, 4.0 + (i % 7) as f32);
    }
    coo.to_csr()
}

/// Square companion with a full diagonal for the SymGS check.
fn square_with_diag(a: &CsrMatrix<f32>) -> CsrMatrix<f32> {
    let n = a.n_rows().min(a.n_cols());
    let mut coo = CooMatrix::<f32>::new(n, n);
    for i in 0..n {
        for k in a.row_ptr()[i]..a.row_ptr()[i + 1] {
            let c = a.col_idx()[k] as usize;
            if c < n && c != i {
                coo.push(i, c, a.values()[k]);
            }
        }
        coo.push(i, i, 8.0 + (i % 5) as f32);
    }
    coo.to_csr()
}

struct GrainRow {
    granularity: &'static str,
    threads: usize,
    steps: usize,
    barriers: usize,
    parallel_rows_pct: f64,
    gflops: f64,
}

struct MatrixRow {
    name: String,
    m: usize,
    nnz: usize,
    levels: usize,
    grains: Vec<GrainRow>,
}

fn time_loop(iters: usize, mut f: impl FnMut()) -> f64 {
    for _ in 0..2 {
        f();
    }
    let mut best = f64::INFINITY;
    for _ in 0..3 {
        let t0 = Instant::now();
        for _ in 0..iters {
            f();
        }
        best = best.min(t0.elapsed().as_secs_f64());
    }
    best
}

fn gflops(nnz: usize, iters: usize, secs: f64) -> f64 {
    if secs <= 0.0 {
        return 0.0;
    }
    2.0 * nnz as f64 * iters as f64 / secs / 1e9
}

fn probe(n: usize) -> Vec<f32> {
    (0..n).map(|i| ((i % 9) as f32) - 4.0).collect()
}

fn measure(name: &str, a: &CsrMatrix<f32>, iters: usize, threads: &[usize]) -> MatrixRow {
    let tri = lower_with_diag(a);
    let b = probe(tri.n_rows());
    let mut reference = vec![f32::NAN; tri.n_rows()];
    sptrsv_seq(&tri, SolveDirection::Forward, &b, &mut reference).unwrap();

    let mut levels = 0;
    let mut grains = Vec::new();
    for (granularity, min_parallel_rows) in granularities() {
        for &w in threads {
            let config = SolveConfig {
                workers: w,
                min_parallel_rows,
            };
            let verified = SolvePlan::build_with(&tri, SolveDirection::Forward, config)
                .expect("suite triangle must build")
                .verify(&tri)
                .expect("honest level-set schedule must certify");
            let plan = verified.plan();
            levels = plan.n_levels();
            let parallel_rows: usize = plan
                .steps()
                .iter()
                .filter(|s| s.is_parallel())
                .map(|s| s.rows().len())
                .sum();
            let mut x = vec![f32::NAN; tri.n_rows()];
            verified.solve_unchecked(&tri, &b, &mut x).unwrap();
            assert!(
                x.iter()
                    .zip(&reference)
                    .all(|(g, r)| g.to_bits() == r.to_bits()),
                "{name}/{granularity} (threads {w}) diverges from sptrsv_seq"
            );
            let secs = time_loop(iters, || {
                verified.solve_unchecked(&tri, &b, &mut x).unwrap();
            });
            grains.push(GrainRow {
                granularity,
                threads: w,
                steps: plan.steps().len(),
                barriers: plan.n_barriers(),
                parallel_rows_pct: 100.0 * parallel_rows as f64 / tri.n_rows() as f64,
                gflops: gflops(tri.nnz(), iters, secs),
            });
        }
    }

    // SymGS smoke at the widest thread count: the composed pipeline must
    // reproduce the sequential sweep bit-for-bit.
    let sym = square_with_diag(a);
    let config = SolveConfig {
        workers: *threads.iter().max().unwrap_or(&1),
        min_parallel_rows: 0,
    };
    let mut plan = SymgsPlan::build_with(&sym, config).expect("suite SymGS must build");
    let bs = probe(sym.n_rows());
    let mut want = vec![0.25f32; sym.n_rows()];
    let mut got = vec![0.25f32; sym.n_rows()];
    for _ in 0..2 {
        symgs_seq(&sym, &bs, &mut want).unwrap();
        plan.apply(&sym, &bs, &mut got).unwrap();
    }
    assert!(
        got.iter()
            .zip(&want)
            .all(|(g, r)| g.to_bits() == r.to_bits()),
        "{name}: SymGS pipeline diverges from symgs_seq"
    );

    MatrixRow {
        name: name.to_string(),
        m: tri.n_rows(),
        nnz: tri.nnz(),
        levels,
        grains,
    }
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn main() {
    let iters = env_usize("SPMV_BENCH_ITERS", 20);
    let tiny = std::env::var("SPMV_BENCH_TINY").is_ok_and(|s| s == "1");
    let out_path =
        std::env::var("SPMV_BENCH_SOLVE_OUT").unwrap_or_else(|_| "BENCH_solve.json".to_string());

    let threads = sweep_threads();

    let cases: Vec<(String, CsrMatrix<f32>)> = if tiny {
        vec![
            (
                "tiny-uniform4".into(),
                gen::random_uniform::<f32>(4_000, 4_000, 4, 4, 1),
            ),
            ("tiny-banded7".into(), gen::banded::<f32>(4_000, 3, 2)),
            (
                "tiny-powerlaw".into(),
                gen::powerlaw::<f32>(3_000, 1, 150, 2.1, 3),
            ),
        ]
    } else {
        load_suite()
            .into_iter()
            .map(|c| (c.meta.name.to_string(), c.matrix))
            .collect()
    };

    let mut rows = Vec::new();
    for (name, a) in &cases {
        eprintln!(
            "  benchmarking {name} ({} x {}, {} nnz) …",
            a.n_rows(),
            a.n_cols(),
            a.nnz()
        );
        rows.push(measure(name, a, iters, &threads));
    }

    let mut json = String::new();
    writeln!(json, "{{").unwrap();
    writeln!(json, "  \"bench\": \"solve\",").unwrap();
    writeln!(
        json,
        "  \"hardware_threads\": {},",
        spmv_parallel::machine_threads()
    )
    .unwrap();
    writeln!(
        json,
        "  \"pool_threads\": {},",
        spmv_parallel::num_threads()
    )
    .unwrap();
    write!(json, "  \"threads_swept\": [").unwrap();
    for (i, w) in threads.iter().enumerate() {
        write!(json, "{}{w}", if i > 0 { ", " } else { "" }).unwrap();
    }
    writeln!(json, "],").unwrap();
    writeln!(json, "  \"iters\": {iters},").unwrap();
    writeln!(json, "  \"tiny\": {tiny},").unwrap();
    writeln!(json, "  \"bitwise_vs_serial\": true,").unwrap();
    writeln!(json, "  \"matrices\": [").unwrap();
    for (i, r) in rows.iter().enumerate() {
        writeln!(
            json,
            "    {{\"name\": \"{}\", \"m\": {}, \"nnz\": {}, \"levels\": {}, \"grains\": [",
            json_escape(&r.name),
            r.m,
            r.nnz,
            r.levels
        )
        .unwrap();
        for (j, g) in r.grains.iter().enumerate() {
            let base = r
                .grains
                .iter()
                .find(|q| q.granularity == g.granularity && q.threads == 1)
                .map(|q| q.gflops)
                .unwrap_or(0.0);
            write!(
                json,
                "      {{\"granularity\": \"{}\", \"threads\": {}, \"steps\": {}, \
                 \"barriers\": {}, \"barriers_per_row\": {:.5}, \
                 \"parallel_rows_pct\": {:.2}, \"gflops\": {:.3}, \
                 \"scaling_efficiency\": {:.3}}}",
                g.granularity,
                g.threads,
                g.steps,
                g.barriers,
                g.barriers as f64 / r.m.max(1) as f64,
                g.parallel_rows_pct,
                g.gflops,
                scaling_efficiency(g.threads, g.gflops, base),
            )
            .unwrap();
            writeln!(json, "{}", if j + 1 < r.grains.len() { "," } else { "" }).unwrap();
        }
        write!(json, "    ]}}").unwrap();
        writeln!(json, "{}", if i + 1 < rows.len() { "," } else { "" }).unwrap();
    }
    writeln!(json, "  ]").unwrap();
    writeln!(json, "}}").unwrap();

    std::fs::write(&out_path, &json).expect("write report");
    println!("{json}");
    eprintln!("wrote {out_path}");
}
