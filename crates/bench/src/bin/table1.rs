//! Table I — the extracted feature parameters, demonstrated on the
//! 16-matrix suite. Regenerate with
//! `cargo run --release -p spmv-bench --bin table1`.

use spmv_bench::{load_suite, Table};
use spmv_sparse::{FeatureSet, MatrixFeatures};

fn main() {
    println!("== Table I feature parameters over the 16-matrix suite ==\n");
    let mut t = Table::new(vec![
        "matrix", "M", "N", "NNZ", "Var_NNZ", "Avg_NNZ", "Min_NNZ", "Max_NNZ",
    ]);
    for case in load_suite() {
        let f = MatrixFeatures::extract(&case.matrix, FeatureSet::TableI);
        t.row(vec![
            case.meta.name.to_string(),
            f.m.to_string(),
            f.n.to_string(),
            f.nnz.to_string(),
            format!("{:.1}", f.var_nnz),
            format!("{:.2}", f.avg_nnz),
            f.min_nnz.to_string(),
            f.max_nnz.to_string(),
        ]);
    }
    t.print();
    println!("\n(Extended §IV-C histogram features: pass FeatureSet::Extended — see the");
    println!(" `ablation` binary for their effect on prediction error.)");
}
