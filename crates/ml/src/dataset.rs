//! Tabular datasets with numeric and categorical attributes and
//! per-example weights (weights feed both boosting and the paper's
//! bin-population weighting).

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Kind of one attribute column.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AttrKind {
    /// Continuous numeric attribute, split by `≤ threshold`.
    Numeric,
    /// Categorical attribute with the given arity; values are codes
    /// `0..arity` stored as `f64`.
    Categorical(usize),
}

/// Name and kind of one attribute column.
#[derive(Clone, Debug, PartialEq)]
pub struct AttrSpec {
    /// Column name (appears in printed trees and rules).
    pub name: String,
    /// Column kind.
    pub kind: AttrKind,
}

impl AttrSpec {
    /// A numeric column.
    pub fn numeric(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            kind: AttrKind::Numeric,
        }
    }

    /// A categorical column with `arity` distinct codes.
    pub fn categorical(name: impl Into<String>, arity: usize) -> Self {
        Self {
            name: name.into(),
            kind: AttrKind::Categorical(arity),
        }
    }
}

/// A weighted, labelled tabular dataset (row-major, `f64` storage;
/// categorical values are integer codes).
#[derive(Clone, Debug)]
pub struct Dataset {
    attrs: Vec<AttrSpec>,
    class_names: Vec<String>,
    data: Vec<f64>,
    labels: Vec<usize>,
    weights: Vec<f64>,
}

impl Dataset {
    /// An empty dataset with the given schema.
    pub fn new(attrs: Vec<AttrSpec>, class_names: Vec<String>) -> Self {
        assert!(!class_names.is_empty(), "need at least one class");
        Self {
            attrs,
            class_names,
            data: Vec::new(),
            labels: Vec::new(),
            weights: Vec::new(),
        }
    }

    /// Schema of the attribute columns.
    pub fn attrs(&self) -> &[AttrSpec] {
        &self.attrs
    }

    /// Number of attribute columns.
    pub fn n_attrs(&self) -> usize {
        self.attrs.len()
    }

    /// Class labels' names.
    pub fn class_names(&self) -> &[String] {
        &self.class_names
    }

    /// Number of classes.
    pub fn n_classes(&self) -> usize {
        self.class_names.len()
    }

    /// Number of examples.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Whether the dataset has no examples.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Append one example with unit weight.
    ///
    /// # Panics
    ///
    /// Panics if the row width or label is out of range, or a categorical
    /// value is not a valid code.
    pub fn push(&mut self, row: &[f64], label: usize) {
        self.push_weighted(row, label, 1.0);
    }

    /// Append one weighted example.
    pub fn push_weighted(&mut self, row: &[f64], label: usize, weight: f64) {
        assert_eq!(row.len(), self.attrs.len(), "row width mismatch");
        assert!(label < self.class_names.len(), "label out of range");
        assert!(weight > 0.0, "weights must be positive");
        for (v, a) in row.iter().zip(&self.attrs) {
            if let AttrKind::Categorical(ar) = a.kind {
                let code = *v as usize;
                assert!(
                    code as f64 == *v && code < ar,
                    "invalid categorical code {v} for '{}'",
                    a.name
                );
            }
        }
        self.data.extend_from_slice(row);
        self.labels.push(label);
        self.weights.push(weight);
    }

    /// The `i`-th example's attribute row.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        let w = self.attrs.len();
        &self.data[i * w..(i + 1) * w]
    }

    /// The `i`-th example's label.
    #[inline]
    pub fn label(&self, i: usize) -> usize {
        self.labels[i]
    }

    /// The `i`-th example's weight.
    #[inline]
    pub fn weight(&self, i: usize) -> f64 {
        self.weights[i]
    }

    /// Replace all weights (used by boosting). Length must match.
    pub fn set_weights(&mut self, weights: Vec<f64>) {
        assert_eq!(weights.len(), self.len());
        assert!(weights.iter().all(|&w| w > 0.0));
        self.weights = weights;
    }

    /// Total weight of the dataset.
    pub fn total_weight(&self) -> f64 {
        self.weights.iter().sum()
    }

    /// Weighted class distribution over the examples selected by
    /// `indices`.
    pub fn class_distribution(&self, indices: &[usize]) -> Vec<f64> {
        let mut dist = vec![0.0; self.n_classes()];
        for &i in indices {
            dist[self.labels[i]] += self.weights[i];
        }
        dist
    }

    /// Majority class among `indices` (ties break to the lower label, so
    /// the result is deterministic).
    pub fn majority_class(&self, indices: &[usize]) -> usize {
        let dist = self.class_distribution(indices);
        dist.iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap().then(b.0.cmp(&a.0)))
            .map(|(c, _)| c)
            .unwrap_or(0)
    }

    /// Deterministic shuffled split into `(train, test)` index sets with
    /// `train_frac` of the examples in the training set — the paper's
    /// 75%/25% protocol when `train_frac = 0.75`.
    pub fn train_test_split(&self, train_frac: f64, seed: u64) -> (Vec<usize>, Vec<usize>) {
        assert!((0.0..=1.0).contains(&train_frac));
        let mut idx: Vec<usize> = (0..self.len()).collect();
        idx.shuffle(&mut StdRng::seed_from_u64(seed));
        let cut = ((self.len() as f64) * train_frac).round() as usize;
        let test = idx.split_off(cut.min(idx.len()));
        (idx, test)
    }

    /// Materialise a subset as its own dataset (weights preserved).
    pub fn subset(&self, indices: &[usize]) -> Dataset {
        let mut out = Dataset::new(self.attrs.clone(), self.class_names.clone());
        for &i in indices {
            out.push_weighted(self.row(i), self.labels[i], self.weights[i]);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> Dataset {
        let mut d = Dataset::new(
            vec![AttrSpec::numeric("x"), AttrSpec::categorical("c", 3)],
            vec!["a".into(), "b".into()],
        );
        d.push(&[1.0, 0.0], 0);
        d.push(&[2.0, 1.0], 1);
        d.push(&[3.0, 2.0], 1);
        d
    }

    #[test]
    fn push_and_access() {
        let d = toy();
        assert_eq!(d.len(), 3);
        assert_eq!(d.row(1), &[2.0, 1.0]);
        assert_eq!(d.label(2), 1);
        assert_eq!(d.weight(0), 1.0);
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn rejects_wrong_width() {
        let mut d = toy();
        d.push(&[1.0], 0);
    }

    #[test]
    #[should_panic(expected = "label out of range")]
    fn rejects_bad_label() {
        let mut d = toy();
        d.push(&[1.0, 0.0], 5);
    }

    #[test]
    #[should_panic(expected = "invalid categorical code")]
    fn rejects_bad_category() {
        let mut d = toy();
        d.push(&[1.0, 7.0], 0);
    }

    #[test]
    fn distribution_and_majority() {
        let d = toy();
        let idx: Vec<usize> = (0..3).collect();
        assert_eq!(d.class_distribution(&idx), vec![1.0, 2.0]);
        assert_eq!(d.majority_class(&idx), 1);
        assert_eq!(d.majority_class(&[0]), 0);
    }

    #[test]
    fn majority_tie_breaks_low() {
        let mut d = Dataset::new(vec![AttrSpec::numeric("x")], vec!["a".into(), "b".into()]);
        d.push(&[0.0], 1);
        d.push(&[0.0], 0);
        assert_eq!(d.majority_class(&[0, 1]), 0);
    }

    #[test]
    fn split_is_deterministic_and_partitions() {
        let mut d = Dataset::new(vec![AttrSpec::numeric("x")], vec!["a".into(), "b".into()]);
        for i in 0..100 {
            d.push(&[i as f64], i % 2);
        }
        let (tr1, te1) = d.train_test_split(0.75, 9);
        let (tr2, te2) = d.train_test_split(0.75, 9);
        assert_eq!(tr1, tr2);
        assert_eq!(te1, te2);
        assert_eq!(tr1.len(), 75);
        assert_eq!(te1.len(), 25);
        let mut all: Vec<usize> = tr1.iter().chain(&te1).copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn subset_preserves_rows_and_weights() {
        let mut d = toy();
        d.set_weights(vec![1.0, 2.0, 3.0]);
        let s = d.subset(&[2, 0]);
        assert_eq!(s.len(), 2);
        assert_eq!(s.row(0), &[3.0, 2.0]);
        assert_eq!(s.weight(0), 3.0);
        assert_eq!(s.label(1), 0);
    }

    #[test]
    fn total_weight_sums() {
        let mut d = toy();
        assert_eq!(d.total_weight(), 3.0);
        d.set_weights(vec![0.5, 0.5, 1.0]);
        assert_eq!(d.total_weight(), 2.0);
    }
}
