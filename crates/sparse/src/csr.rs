//! Compressed sparse row (CSR) storage — the format the paper targets
//! (Figure 1) — plus the sequential reference SpMV (Algorithm 1).

use crate::coo::CooMatrix;
use crate::dense::DenseMatrix;
use crate::error::{CsrBuildError, SparseError};
use crate::scalar::Scalar;
use std::sync::atomic::{AtomicU64, Ordering};

/// Process-unique generation id handed to each freshly built (or value-
/// mutated) matrix. Monotone and never reused, so two matrices — or two
/// mutation epochs of one matrix — can never collide.
fn next_values_id() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(1);
    NEXT.fetch_add(1, Ordering::Relaxed)
}

/// A sparse matrix in compressed sparse row format.
///
/// Three arrays represent the matrix, exactly as in Figure 1 of the
/// paper:
///
/// * `row_ptr` — offsets of each row's first non-zero in `col_idx`/`values`
///   (length `n_rows + 1`);
/// * `col_idx` — column indices of the non-zeros in row-major order;
/// * `values` — the corresponding non-zero values.
///
/// Column indices are stored as `u32` (the UF collection fits comfortably;
/// this matches the 4-byte `int` the paper's OpenCL kernels load and is what
/// the simulated GPU charges for).
#[derive(Clone, Debug)]
pub struct CsrMatrix<T> {
    n_rows: usize,
    n_cols: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<u32>,
    values: Vec<T>,
    /// Generation id of the current value array: assigned fresh at
    /// construction and on every mutable access to `values`. Derived
    /// formats that cache a copy of the values (e.g.
    /// [`crate::packed::PackedSell`]) compare this id to detect value-only
    /// updates without rescanning O(nnz) data. Clones keep the id — their
    /// values are bit-identical until either side mutates (which bumps).
    values_id: u64,
}

impl<T: PartialEq> PartialEq for CsrMatrix<T> {
    /// Structural + numeric equality. The [`values_id`] generation tag is
    /// deliberately ignored: two matrices built independently with the
    /// same arrays are equal.
    ///
    /// [`values_id`]: CsrMatrix::values_id
    fn eq(&self, other: &Self) -> bool {
        self.n_rows == other.n_rows
            && self.n_cols == other.n_cols
            && self.row_ptr == other.row_ptr
            && self.col_idx == other.col_idx
            && self.values == other.values
    }
}

impl<T: Scalar> CsrMatrix<T> {
    /// Build a CSR matrix from its three raw arrays, validating every
    /// structural invariant.
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::InvalidStructure`] when `row_ptr` has the
    /// wrong length, is non-monotone, does not start at 0 or end at
    /// `col_idx.len()`, when `col_idx` and `values` disagree in length, or
    /// when any column index is out of range.
    pub fn from_parts(
        n_rows: usize,
        n_cols: usize,
        row_ptr: Vec<usize>,
        col_idx: Vec<u32>,
        values: Vec<T>,
    ) -> Result<Self, SparseError> {
        Self::try_new(n_rows, n_cols, row_ptr, col_idx, values).map_err(SparseError::from)
    }

    /// Build a CSR matrix from its three raw arrays, validating every
    /// structural invariant and reporting the first violation as a typed
    /// [`CsrBuildError`] naming the exact defect (offending row, column
    /// index, position, or length pair).
    ///
    /// This is the error-typed twin of [`from_parts`]; the checks are
    /// identical.
    ///
    /// [`from_parts`]: CsrMatrix::from_parts
    pub fn try_new(
        n_rows: usize,
        n_cols: usize,
        row_ptr: Vec<usize>,
        col_idx: Vec<u32>,
        values: Vec<T>,
    ) -> Result<Self, CsrBuildError> {
        if row_ptr.len() != n_rows + 1 {
            return Err(CsrBuildError::RowPtrLen {
                len: row_ptr.len(),
                n_rows,
            });
        }
        if row_ptr[0] != 0 {
            return Err(CsrBuildError::RowPtrStart { first: row_ptr[0] });
        }
        if *row_ptr.last().unwrap() != col_idx.len() {
            return Err(CsrBuildError::NnzMismatch {
                last: *row_ptr.last().unwrap(),
                nnz: col_idx.len(),
            });
        }
        if col_idx.len() != values.len() {
            return Err(CsrBuildError::LengthMismatch {
                col_idx: col_idx.len(),
                values: values.len(),
            });
        }
        if let Some(row) = row_ptr.windows(2).position(|w| w[0] > w[1]) {
            return Err(CsrBuildError::NonMonotone { row });
        }
        if let Some((pos, &col)) = col_idx
            .iter()
            .enumerate()
            .find(|&(_, &c)| c as usize >= n_cols)
        {
            return Err(CsrBuildError::ColOutOfBounds { pos, col, n_cols });
        }
        Ok(Self {
            n_rows,
            n_cols,
            row_ptr,
            col_idx,
            values,
            values_id: next_values_id(),
        })
    }

    /// Build without validation. Intended for generators that construct
    /// rows in order and uphold the invariants by construction; debug
    /// builds still assert them.
    pub fn from_parts_unchecked(
        n_rows: usize,
        n_cols: usize,
        row_ptr: Vec<usize>,
        col_idx: Vec<u32>,
        values: Vec<T>,
    ) -> Self {
        debug_assert_eq!(row_ptr.len(), n_rows + 1);
        debug_assert_eq!(col_idx.len(), values.len());
        debug_assert_eq!(*row_ptr.last().unwrap_or(&0), col_idx.len());
        Self {
            n_rows,
            n_cols,
            row_ptr,
            col_idx,
            values,
            values_id: next_values_id(),
        }
    }

    /// An `n_rows × n_cols` matrix with no non-zeros.
    pub fn zeros(n_rows: usize, n_cols: usize) -> Self {
        Self {
            n_rows,
            n_cols,
            row_ptr: vec![0; n_rows + 1],
            col_idx: Vec::new(),
            values: Vec::new(),
            values_id: next_values_id(),
        }
    }

    /// The `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        Self {
            n_rows: n,
            n_cols: n,
            row_ptr: (0..=n).collect(),
            col_idx: (0..n as u32).collect(),
            values: vec![T::ONE; n],
            values_id: next_values_id(),
        }
    }

    /// Number of rows (`M` in Table I).
    #[inline]
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Number of columns (`N` in Table I).
    #[inline]
    pub fn n_cols(&self) -> usize {
        self.n_cols
    }

    /// Number of stored non-zeros (`NNZ` in Table I).
    #[inline]
    pub fn nnz(&self) -> usize {
        self.col_idx.len()
    }

    /// The row-pointer array (`rowPtr` in Figure 1).
    #[inline]
    pub fn row_ptr(&self) -> &[usize] {
        &self.row_ptr
    }

    /// The column-index array (`colIdx` in Figure 1).
    #[inline]
    pub fn col_idx(&self) -> &[u32] {
        &self.col_idx
    }

    /// The value array (`val` in Figure 1).
    #[inline]
    pub fn values(&self) -> &[T] {
        &self.values
    }

    /// Mutable access to the values (structure stays fixed). Bumps the
    /// [`values_id`](Self::values_id) generation: the exclusive borrow
    /// ends before any execution path can read the matrix again, so
    /// tagging at hand-out time is exact.
    #[inline]
    pub fn values_mut(&mut self) -> &mut [T] {
        self.values_id = next_values_id();
        &mut self.values
    }

    /// Generation id of the current value array. Changes on every
    /// [`values_mut`], [`fill_values_with`] or [`sort_rows`] call and is
    /// process-unique, so caching layers can detect "same pattern, new
    /// numbers" in O(1).
    ///
    /// [`values_mut`]: Self::values_mut
    /// [`fill_values_with`]: Self::fill_values_with
    /// [`sort_rows`]: Self::sort_rows
    #[inline]
    pub fn values_id(&self) -> u64 {
        self.values_id
    }

    /// Number of stored entries in row `i`.
    #[inline]
    pub fn row_nnz(&self, i: usize) -> usize {
        self.row_ptr[i + 1] - self.row_ptr[i]
    }

    /// Column indices and values of row `i`.
    #[inline]
    pub fn row(&self, i: usize) -> (&[u32], &[T]) {
        let (s, e) = (self.row_ptr[i], self.row_ptr[i + 1]);
        (&self.col_idx[s..e], &self.values[s..e])
    }

    /// Total non-zeros in the half-open row range `[start, end)` — the
    /// "workload" of a virtual row in the paper's Algorithm 2, step 1:
    /// `wl = rowPtr[min(end, m)] - rowPtr[start]`.
    #[inline]
    pub fn range_nnz(&self, start: usize, end: usize) -> usize {
        let end = end.min(self.n_rows);
        self.row_ptr[end] - self.row_ptr[start]
    }

    /// Iterator over `(row, col, value)` triplets in row-major order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, u32, T)> + '_ {
        (0..self.n_rows).flat_map(move |i| {
            let (cols, vals) = self.row(i);
            cols.iter().zip(vals).map(move |(&c, &v)| (i, c, v))
        })
    }

    /// Sequential reference SpMV (the paper's Algorithm 1): `u = A · v`.
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::DimensionMismatch`] when `v.len() != n_cols`
    /// or `u.len() != n_rows`.
    pub fn spmv_seq(&self, v: &[T], u: &mut [T]) -> Result<(), SparseError> {
        if v.len() != self.n_cols {
            return Err(SparseError::DimensionMismatch {
                context: "spmv input vector".into(),
                expected: self.n_cols,
                got: v.len(),
            });
        }
        if u.len() != self.n_rows {
            return Err(SparseError::DimensionMismatch {
                context: "spmv output vector".into(),
                expected: self.n_rows,
                got: u.len(),
            });
        }
        for (i, out) in u.iter_mut().enumerate() {
            let (cols, vals) = self.row(i);
            let mut sum = T::ZERO;
            for (&c, &a) in cols.iter().zip(vals) {
                sum = a.mul_add_(v[c as usize], sum);
            }
            *out = sum;
        }
        Ok(())
    }

    /// Convenience allocating wrapper around [`spmv_seq`](Self::spmv_seq).
    pub fn spmv_seq_alloc(&self, v: &[T]) -> Result<Vec<T>, SparseError> {
        let mut u = vec![T::ZERO; self.n_rows];
        self.spmv_seq(v, &mut u)?;
        Ok(u)
    }

    /// Whether every row's column indices are strictly increasing.
    pub fn rows_sorted(&self) -> bool {
        (0..self.n_rows).all(|i| {
            let (cols, _) = self.row(i);
            cols.windows(2).all(|w| w[0] < w[1])
        })
    }

    /// Sort the entries of every row by column index (stable with respect
    /// to values, which travel with their column).
    pub fn sort_rows(&mut self) {
        self.values_id = next_values_id();
        for i in 0..self.n_rows {
            let (s, e) = (self.row_ptr[i], self.row_ptr[i + 1]);
            let mut pairs: Vec<(u32, T)> = self.col_idx[s..e]
                .iter()
                .copied()
                .zip(self.values[s..e].iter().copied())
                .collect();
            pairs.sort_by_key(|&(c, _)| c);
            for (k, (c, v)) in pairs.into_iter().enumerate() {
                self.col_idx[s + k] = c;
                self.values[s + k] = v;
            }
        }
    }

    /// Transpose (CSR → CSR of the transpose) via a counting pass.
    pub fn transpose(&self) -> Self {
        let mut counts = vec![0usize; self.n_cols + 1];
        for &c in &self.col_idx {
            counts[c as usize + 1] += 1;
        }
        for j in 0..self.n_cols {
            counts[j + 1] += counts[j];
        }
        let row_ptr = counts.clone();
        let mut col_idx = vec![0u32; self.nnz()];
        let mut values = vec![T::ZERO; self.nnz()];
        let mut next = counts;
        for i in 0..self.n_rows {
            let (cols, vals) = self.row(i);
            for (&c, &v) in cols.iter().zip(vals) {
                let slot = next[c as usize];
                next[c as usize] += 1;
                col_idx[slot] = i as u32;
                values[slot] = v;
            }
        }
        Self {
            n_rows: self.n_cols,
            n_cols: self.n_rows,
            row_ptr,
            col_idx,
            values,
            values_id: next_values_id(),
        }
    }

    /// Convert to triplet (COO) form.
    pub fn to_coo(&self) -> CooMatrix<T> {
        let mut coo = CooMatrix::new(self.n_rows, self.n_cols);
        for (i, c, v) in self.iter() {
            coo.push(i, c as usize, v);
        }
        coo
    }

    /// Materialise as a dense matrix (tests and tiny examples only).
    pub fn to_dense(&self) -> DenseMatrix<T> {
        let mut d = DenseMatrix::zeros(self.n_rows, self.n_cols);
        for (i, c, v) in self.iter() {
            *d.get_mut(i, c as usize) += v;
        }
        d
    }

    /// Deterministically randomise the values (structure preserved),
    /// useful for turning a pattern matrix into a numeric one.
    pub fn fill_values_with(&mut self, mut f: impl FnMut(usize) -> T) {
        self.values_id = next_values_id();
        for (k, v) in self.values.iter_mut().enumerate() {
            *v = f(k);
        }
    }

    /// Estimated heap footprint of the three CSR arrays in bytes.
    pub fn storage_bytes(&self) -> usize {
        self.row_ptr.len() * std::mem::size_of::<usize>()
            + self.col_idx.len() * std::mem::size_of::<u32>()
            + self.values.len() * T::BYTES
    }
}

/// The worked example of Figure 1 in the paper: a 4×4 matrix with eight
/// non-zeros. Used across the test suites as a tiny fixture.
pub fn figure1_example<T: Scalar>() -> CsrMatrix<T> {
    // A = [1 6 0 0; 3 0 2 0; 0 4 0 0; 0 5 8 1]
    CsrMatrix::from_parts(
        4,
        4,
        vec![0, 2, 4, 5, 8],
        vec![0, 1, 0, 2, 1, 1, 2, 3],
        [1.0, 6.0, 3.0, 2.0, 4.0, 5.0, 8.0, 1.0]
            .iter()
            .map(|&x| T::from_f64(x))
            .collect(),
    )
    .expect("figure-1 fixture is valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure1_roundtrip() {
        let a = figure1_example::<f64>();
        assert_eq!(a.n_rows(), 4);
        assert_eq!(a.n_cols(), 4);
        assert_eq!(a.nnz(), 8);
        assert_eq!(a.row_nnz(0), 2);
        assert_eq!(a.row_nnz(2), 1);
        let (cols, vals) = a.row(3);
        assert_eq!(cols, &[1, 2, 3]);
        assert_eq!(vals, &[5.0, 8.0, 1.0]);
    }

    #[test]
    fn figure1_spmv_matches_hand_computation() {
        let a = figure1_example::<f64>();
        let v = vec![1.0, 2.0, 3.0, 4.0];
        let u = a.spmv_seq_alloc(&v).unwrap();
        // [1*1+6*2, 3*1+2*3, 4*2, 5*2+8*3+1*4]
        assert_eq!(u, vec![13.0, 9.0, 8.0, 38.0]);
    }

    #[test]
    fn validation_rejects_bad_row_ptr() {
        let r = CsrMatrix::<f64>::from_parts(2, 2, vec![0, 2], vec![0, 1], vec![1.0, 2.0]);
        assert!(matches!(r, Err(SparseError::InvalidStructure(_))));
        let r = CsrMatrix::<f64>::from_parts(2, 2, vec![0, 2, 1], vec![0, 1], vec![1.0, 2.0]);
        assert!(r.is_err());
        let r = CsrMatrix::<f64>::from_parts(2, 2, vec![1, 1, 2], vec![0, 1], vec![1.0, 2.0]);
        assert!(r.is_err());
    }

    #[test]
    fn validation_rejects_out_of_range_column() {
        let r = CsrMatrix::<f64>::from_parts(1, 2, vec![0, 1], vec![2], vec![1.0]);
        assert!(r.is_err());
    }

    #[test]
    fn validation_rejects_length_mismatch() {
        let r = CsrMatrix::<f64>::from_parts(1, 2, vec![0, 2], vec![0, 1], vec![1.0]);
        assert!(r.is_err());
    }

    #[test]
    fn spmv_dimension_checks() {
        let a = figure1_example::<f64>();
        let mut u = vec![0.0; 4];
        assert!(a.spmv_seq(&[1.0; 3], &mut u).is_err());
        assert!(a.spmv_seq(&[1.0; 4], &mut [0.0; 3]).is_err());
    }

    #[test]
    fn identity_spmv_is_identity() {
        let a = CsrMatrix::<f64>::identity(5);
        let v = vec![3.0, -1.0, 0.5, 2.0, 9.0];
        assert_eq!(a.spmv_seq_alloc(&v).unwrap(), v);
    }

    #[test]
    fn zeros_matrix() {
        let a = CsrMatrix::<f32>::zeros(3, 4);
        assert_eq!(a.nnz(), 0);
        assert_eq!(a.spmv_seq_alloc(&[1.0; 4]).unwrap(), vec![0.0; 3]);
    }

    #[test]
    fn transpose_twice_is_identity_op() {
        let a = figure1_example::<f64>();
        let att = a.transpose().transpose();
        assert_eq!(a, att);
    }

    #[test]
    fn transpose_matches_dense() {
        let a = figure1_example::<f64>();
        let t = a.transpose();
        let d = a.to_dense();
        let dt = t.to_dense();
        for i in 0..4 {
            for j in 0..4 {
                assert_eq!(d.get(i, j), dt.get(j, i));
            }
        }
    }

    #[test]
    fn range_nnz_matches_sum_of_rows() {
        let a = figure1_example::<f64>();
        assert_eq!(a.range_nnz(0, 2), 4);
        assert_eq!(a.range_nnz(1, 10), 6); // end clamped to m
        assert_eq!(a.range_nnz(0, 4), a.nnz());
    }

    #[test]
    fn sort_rows_sorts() {
        let mut a =
            CsrMatrix::from_parts(1, 4, vec![0, 3], vec![3, 0, 2], vec![30.0, 0.5, 20.0]).unwrap();
        assert!(!a.rows_sorted());
        a.sort_rows();
        assert!(a.rows_sorted());
        let (cols, vals) = a.row(0);
        assert_eq!(cols, &[0, 2, 3]);
        assert_eq!(vals, &[0.5, 20.0, 30.0]);
    }

    #[test]
    fn storage_bytes_counts_all_arrays() {
        let a = figure1_example::<f32>();
        let expect = 5 * std::mem::size_of::<usize>() + 8 * 4 + 8 * 4;
        assert_eq!(a.storage_bytes(), expect);
    }

    #[test]
    fn iter_yields_all_nnz_in_row_major_order() {
        let a = figure1_example::<f64>();
        let triplets: Vec<_> = a.iter().collect();
        assert_eq!(triplets.len(), 8);
        assert!(triplets.windows(2).all(|w| w[0].0 <= w[1].0));
        assert_eq!(triplets[0], (0, 0, 1.0));
        assert_eq!(triplets[7], (3, 3, 1.0));
    }
}
