//! The decision-tree learner (C4.5-style induction + pessimistic
//! pruning).

use crate::dataset::{AttrKind, Dataset};
use crate::entropy::{entropy, gain_ratio, information_gain, split_info};
use crate::prune::pessimistic_errors;

/// Induction hyper-parameters.
#[derive(Clone, Copy, Debug)]
pub struct TreeConfig {
    /// Minimum (weighted) examples on *each* side of an accepted split
    /// (C4.5's `-m`, default 2).
    pub min_split: f64,
    /// Hard depth cap (a safety net; C4.5 has none).
    pub max_depth: usize,
    /// Confidence factor for pessimistic pruning (C4.5's `-c`, default
    /// 0.25). Larger prunes less.
    pub cf: f64,
    /// Whether to prune at all.
    pub prune: bool,
}

impl Default for TreeConfig {
    fn default() -> Self {
        Self {
            min_split: 2.0,
            max_depth: 40,
            cf: 0.25,
            prune: true,
        }
    }
}

/// One node of the tree (arena storage; children are node indices).
#[derive(Clone, Debug)]
pub enum Node {
    /// Terminal node.
    Leaf {
        /// Predicted class.
        class: usize,
        /// Weighted examples that reached the leaf in training.
        n: f64,
        /// Weighted training misclassifications at the leaf.
        errors: f64,
    },
    /// Binary split on a numeric attribute: `row[attr] ≤ threshold` goes
    /// left.
    Numeric {
        /// Attribute index.
        attr: usize,
        /// Split threshold.
        threshold: f64,
        /// Left (≤) child index.
        left: usize,
        /// Right (>) child index.
        right: usize,
        /// Majority class at this node (fallback for missing branches).
        majority: usize,
    },
    /// Multiway split on a categorical attribute; `children[code]`.
    Categorical {
        /// Attribute index.
        attr: usize,
        /// One child per category code.
        children: Vec<usize>,
        /// Majority class at this node.
        majority: usize,
    },
}

/// A trained decision tree.
#[derive(Clone, Debug)]
pub struct DecisionTree {
    nodes: Vec<Node>,
    root: usize,
    n_classes: usize,
    attr_names: Vec<String>,
}

impl DecisionTree {
    /// Induce a tree from `data` with the given configuration.
    ///
    /// # Panics
    ///
    /// Panics if the dataset is empty.
    pub fn fit(data: &Dataset, config: &TreeConfig) -> Self {
        assert!(!data.is_empty(), "cannot fit on an empty dataset");
        let mut tree = Self {
            nodes: Vec::new(),
            root: 0,
            n_classes: data.n_classes(),
            attr_names: data.attrs().iter().map(|a| a.name.clone()).collect(),
        };
        let indices: Vec<usize> = (0..data.len()).collect();
        tree.root = tree.build(data, indices, config, 0);
        if config.prune {
            tree.prune_node(tree.root, config.cf);
        }
        tree
    }

    /// Predict the class of one attribute row.
    pub fn predict(&self, row: &[f64]) -> usize {
        let mut cur = self.root;
        loop {
            match &self.nodes[cur] {
                Node::Leaf { class, .. } => return *class,
                Node::Numeric {
                    attr,
                    threshold,
                    left,
                    right,
                    ..
                } => {
                    cur = if row[*attr] <= *threshold {
                        *left
                    } else {
                        *right
                    };
                }
                Node::Categorical {
                    attr,
                    children,
                    majority,
                } => {
                    let code = row[*attr] as usize;
                    match children.get(code) {
                        Some(&c) => cur = c,
                        None => return *majority,
                    }
                }
            }
        }
    }

    /// Number of nodes (after pruning, unreachable arena slots are not
    /// counted).
    pub fn n_nodes(&self) -> usize {
        self.count(self.root)
    }

    /// Number of leaves.
    pub fn n_leaves(&self) -> usize {
        self.count_leaves(self.root)
    }

    /// Depth of the tree (a lone leaf has depth 1).
    pub fn depth(&self) -> usize {
        self.depth_of(self.root)
    }

    /// Number of target classes.
    pub fn n_classes(&self) -> usize {
        self.n_classes
    }

    /// Attribute names (for printing).
    pub fn attr_names(&self) -> &[String] {
        &self.attr_names
    }

    pub(crate) fn root(&self) -> usize {
        self.root
    }

    pub(crate) fn node(&self, i: usize) -> &Node {
        &self.nodes[i]
    }

    /// Render the tree as indented text (the C4.5 `-v` style dump).
    pub fn dump(&self) -> String {
        let mut out = String::new();
        self.dump_node(self.root, 0, &mut out);
        out
    }

    fn dump_node(&self, i: usize, depth: usize, out: &mut String) {
        use std::fmt::Write;
        let pad = "  ".repeat(depth);
        match &self.nodes[i] {
            Node::Leaf { class, n, errors } => {
                let _ = writeln!(out, "{pad}-> class {class} ({n:.1}, err {errors:.1})");
            }
            Node::Numeric {
                attr,
                threshold,
                left,
                right,
                ..
            } => {
                let name = &self.attr_names[*attr];
                let _ = writeln!(out, "{pad}{name} <= {threshold:.6}:");
                self.dump_node(*left, depth + 1, out);
                let _ = writeln!(out, "{pad}{name} > {threshold:.6}:");
                self.dump_node(*right, depth + 1, out);
            }
            Node::Categorical { attr, children, .. } => {
                let name = &self.attr_names[*attr];
                for (code, &c) in children.iter().enumerate() {
                    let _ = writeln!(out, "{pad}{name} = {code}:");
                    self.dump_node(c, depth + 1, out);
                }
            }
        }
    }

    fn count(&self, i: usize) -> usize {
        match &self.nodes[i] {
            Node::Leaf { .. } => 1,
            Node::Numeric { left, right, .. } => 1 + self.count(*left) + self.count(*right),
            Node::Categorical { children, .. } => {
                1 + children.iter().map(|&c| self.count(c)).sum::<usize>()
            }
        }
    }

    fn count_leaves(&self, i: usize) -> usize {
        match &self.nodes[i] {
            Node::Leaf { .. } => 1,
            Node::Numeric { left, right, .. } => {
                self.count_leaves(*left) + self.count_leaves(*right)
            }
            Node::Categorical { children, .. } => {
                children.iter().map(|&c| self.count_leaves(c)).sum()
            }
        }
    }

    fn depth_of(&self, i: usize) -> usize {
        match &self.nodes[i] {
            Node::Leaf { .. } => 1,
            Node::Numeric { left, right, .. } => {
                1 + self.depth_of(*left).max(self.depth_of(*right))
            }
            Node::Categorical { children, .. } => {
                1 + children
                    .iter()
                    .map(|&c| self.depth_of(c))
                    .max()
                    .unwrap_or(0)
            }
        }
    }

    // ------------------------------------------------------------------
    // Induction
    // ------------------------------------------------------------------

    fn leaf_for(&mut self, data: &Dataset, indices: &[usize]) -> usize {
        let dist = data.class_distribution(indices);
        let n: f64 = dist.iter().sum();
        let class = data.majority_class(indices);
        let errors = n - dist[class];
        self.nodes.push(Node::Leaf { class, n, errors });
        self.nodes.len() - 1
    }

    fn build(
        &mut self,
        data: &Dataset,
        indices: Vec<usize>,
        config: &TreeConfig,
        depth: usize,
    ) -> usize {
        let dist = data.class_distribution(&indices);
        let total_w: f64 = dist.iter().sum();
        let n_nonzero = dist.iter().filter(|&&w| w > 0.0).count();
        if n_nonzero <= 1 || depth >= config.max_depth || total_w < 2.0 * config.min_split {
            return self.leaf_for(data, &indices);
        }
        let parent_h = entropy(&dist);

        // Evaluate every attribute's best split.
        let mut candidates: Vec<SplitCandidate> = Vec::new();
        for attr in 0..data.n_attrs() {
            let cand = match data.attrs()[attr].kind {
                AttrKind::Numeric => {
                    best_numeric_split(data, &indices, attr, parent_h, total_w, config)
                }
                AttrKind::Categorical(arity) => {
                    best_categorical_split(data, &indices, attr, arity, parent_h, total_w, config)
                }
            };
            if let Some(c) = cand {
                candidates.push(c);
            }
        }
        if candidates.is_empty() {
            return self.leaf_for(data, &indices);
        }

        // C4.5: only consider attributes whose gain is at least the
        // average gain, then pick the best gain *ratio*.
        let avg_gain: f64 =
            candidates.iter().map(|c| c.gain).sum::<f64>() / candidates.len() as f64;
        let best = candidates
            .iter()
            .filter(|c| c.gain >= avg_gain - 1e-12)
            .max_by(|a, b| {
                a.ratio
                    .partial_cmp(&b.ratio)
                    .unwrap()
                    .then(b.attr.cmp(&a.attr))
            })
            .cloned();
        let best = match best {
            Some(b) if b.gain > 1e-12 => b,
            _ => return self.leaf_for(data, &indices),
        };

        let majority = data.majority_class(&indices);
        match best.kind {
            SplitKind::Numeric(threshold) => {
                let (mut left, mut right) = (Vec::new(), Vec::new());
                for &i in &indices {
                    if data.row(i)[best.attr] <= threshold {
                        left.push(i);
                    } else {
                        right.push(i);
                    }
                }
                let l = self.build(data, left, config, depth + 1);
                let r = self.build(data, right, config, depth + 1);
                self.nodes.push(Node::Numeric {
                    attr: best.attr,
                    threshold,
                    left: l,
                    right: r,
                    majority,
                });
                self.nodes.len() - 1
            }
            SplitKind::Categorical(arity) => {
                let mut buckets: Vec<Vec<usize>> = vec![Vec::new(); arity];
                for &i in &indices {
                    let code = data.row(i)[best.attr] as usize;
                    buckets[code].push(i);
                }
                let children: Vec<usize> = buckets
                    .into_iter()
                    .map(|bucket| {
                        if bucket.is_empty() {
                            // Empty branch: a majority leaf.
                            self.nodes.push(Node::Leaf {
                                class: majority,
                                n: 0.0,
                                errors: 0.0,
                            });
                            self.nodes.len() - 1
                        } else {
                            self.build(data, bucket, config, depth + 1)
                        }
                    })
                    .collect();
                self.nodes.push(Node::Categorical {
                    attr: best.attr,
                    children,
                    majority,
                });
                self.nodes.len() - 1
            }
        }
    }

    // ------------------------------------------------------------------
    // Pruning
    // ------------------------------------------------------------------

    /// Bottom-up pessimistic pruning. Returns `(n, errors, est_errors)`
    /// of the (possibly replaced) subtree rooted at `i`.
    fn prune_node(&mut self, i: usize, cf: f64) -> (f64, f64, f64) {
        match self.nodes[i].clone() {
            Node::Leaf { n, errors, .. } => (n, errors, pessimistic_errors(n, errors, cf)),
            Node::Numeric {
                left,
                right,
                majority,
                ..
            } => {
                let (ln, le, lest) = self.prune_node(left, cf);
                let (rn, re, rest) = self.prune_node(right, cf);
                let (n, e, est) = (ln + rn, le + re, lest + rest);
                self.maybe_collapse(i, n, e, est, majority, cf)
            }
            Node::Categorical {
                children, majority, ..
            } => {
                let mut n = 0.0;
                let mut e = 0.0;
                let mut est = 0.0;
                for c in children {
                    let (cn, ce, cest) = self.prune_node(c, cf);
                    n += cn;
                    e += ce;
                    est += cest;
                }
                self.maybe_collapse(i, n, e, est, majority, cf)
            }
        }
    }

    /// Replace node `i` by a majority leaf when the leaf's pessimistic
    /// error does not exceed the subtree's.
    fn maybe_collapse(
        &mut self,
        i: usize,
        n: f64,
        subtree_errors: f64,
        subtree_est: f64,
        majority: usize,
        cf: f64,
    ) -> (f64, f64, f64) {
        // Training errors a majority leaf would make here: n minus the
        // weight that the majority class itself covers. We recover it
        // from the children's error structure conservatively via the
        // subtree errors plus re-labelled examples; the exact count needs
        // the distribution, so we store majority-correct weight in the
        // leaf errors when collapsing. For the collapse test we need the
        // leaf error count, which is n - majority_weight. Since the
        // children were just pruned we can measure it by summing leaves.
        let leaf_errors = n - self.majority_weight(i, majority);
        let leaf_est = pessimistic_errors(n, leaf_errors, cf);
        if leaf_est <= subtree_est + 0.1 {
            self.nodes[i] = Node::Leaf {
                class: majority,
                n,
                errors: leaf_errors,
            };
            (n, leaf_errors, leaf_est)
        } else {
            (n, subtree_errors, subtree_est)
        }
    }

    /// Weighted training examples of class `class` under node `i`,
    /// recovered from leaf statistics.
    fn majority_weight(&self, i: usize, class: usize) -> f64 {
        match &self.nodes[i] {
            Node::Leaf {
                class: lc,
                n,
                errors,
            } => {
                if *lc == class {
                    n - errors
                } else {
                    // Lower bound: we only know the leaf's own class
                    // share exactly; other classes' shares are folded
                    // into `errors`. Assume none of it is `class` —
                    // conservative (pruning slightly less aggressive).
                    0.0
                }
            }
            Node::Numeric { left, right, .. } => {
                self.majority_weight(*left, class) + self.majority_weight(*right, class)
            }
            Node::Categorical { children, .. } => children
                .iter()
                .map(|&c| self.majority_weight(c, class))
                .sum(),
        }
    }
}

#[derive(Clone, Debug)]
enum SplitKind {
    Numeric(f64),
    Categorical(usize),
}

#[derive(Clone, Debug)]
struct SplitCandidate {
    attr: usize,
    gain: f64,
    ratio: f64,
    kind: SplitKind,
}

/// Best `≤ threshold` split on a numeric attribute, or `None` when no
/// admissible threshold exists.
fn best_numeric_split(
    data: &Dataset,
    indices: &[usize],
    attr: usize,
    parent_h: f64,
    total_w: f64,
    config: &TreeConfig,
) -> Option<SplitCandidate> {
    let n_classes = data.n_classes();
    let mut items: Vec<(f64, usize, f64)> = indices
        .iter()
        .map(|&i| (data.row(i)[attr], data.label(i), data.weight(i)))
        .collect();
    items.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());

    let mut right_dist = vec![0.0f64; n_classes];
    for &(_, label, w) in &items {
        right_dist[label] += w;
    }
    let mut left_dist = vec![0.0f64; n_classes];
    let mut left_w = 0.0;
    let mut best: Option<(f64, f64, f64)> = None; // (gain, ratio, threshold)

    let mut k = 0;
    while k < items.len() {
        // Advance over ties in value.
        let v = items[k].0;
        while k < items.len() && items[k].0 == v {
            let (_, label, w) = items[k];
            left_dist[label] += w;
            right_dist[label] -= w;
            left_w += w;
            k += 1;
        }
        if k == items.len() {
            break;
        }
        let right_w = total_w - left_w;
        if left_w < config.min_split || right_w < config.min_split {
            continue;
        }
        let next_v = items[k].0;
        let weighted =
            (left_w / total_w) * entropy(&left_dist) + (right_w / total_w) * entropy(&right_dist);
        let gain = parent_h - weighted;
        let si = split_info(total_w, &[left_w, right_w]);
        let ratio = gain_ratio(gain, si);
        let threshold = v + (next_v - v) / 2.0;
        if best.is_none_or(|(_, r, _)| ratio > r) {
            best = Some((gain, ratio, threshold));
        }
    }
    best.map(|(gain, ratio, threshold)| SplitCandidate {
        attr,
        gain,
        ratio,
        kind: SplitKind::Numeric(threshold),
    })
}

/// Multiway split on a categorical attribute, or `None` when fewer than
/// two branches would be populated.
fn best_categorical_split(
    data: &Dataset,
    indices: &[usize],
    attr: usize,
    arity: usize,
    parent_h: f64,
    total_w: f64,
    config: &TreeConfig,
) -> Option<SplitCandidate> {
    let n_classes = data.n_classes();
    let mut dists = vec![vec![0.0f64; n_classes]; arity];
    for &i in indices {
        let code = data.row(i)[attr] as usize;
        dists[code][data.label(i)] += data.weight(i);
    }
    let child_weights: Vec<f64> = dists.iter().map(|d| d.iter().sum()).collect();
    let populated = child_weights.iter().filter(|&&w| w > 0.0).count();
    if populated < 2 {
        return None;
    }
    // C4.5's -m: at least two branches must carry min_split weight.
    let heavy = child_weights
        .iter()
        .filter(|&&w| w >= config.min_split)
        .count();
    if heavy < 2 {
        return None;
    }
    let gain = information_gain(parent_h, total_w, &dists);
    let si = split_info(total_w, &child_weights);
    let ratio = gain_ratio(gain, si);
    Some(SplitCandidate {
        attr,
        gain,
        ratio,
        kind: SplitKind::Categorical(arity),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::AttrSpec;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn numeric_ds(points: &[(f64, usize)]) -> Dataset {
        let mut d = Dataset::new(vec![AttrSpec::numeric("x")], vec!["a".into(), "b".into()]);
        for &(x, y) in points {
            d.push(&[x], y);
        }
        d
    }

    #[test]
    fn single_threshold_problem_is_learned_exactly() {
        let pts: Vec<(f64, usize)> = (0..100).map(|i| (i as f64, usize::from(i >= 37))).collect();
        let d = numeric_ds(&pts);
        let t = DecisionTree::fit(&d, &TreeConfig::default());
        for &(x, y) in &pts {
            assert_eq!(t.predict(&[x]), y, "x = {x}");
        }
        assert!(t.depth() <= 2, "depth = {}", t.depth());
    }

    #[test]
    fn pure_dataset_yields_single_leaf() {
        let d = numeric_ds(&[(1.0, 0), (2.0, 0), (3.0, 0)]);
        let t = DecisionTree::fit(&d, &TreeConfig::default());
        assert_eq!(t.n_nodes(), 1);
        assert_eq!(t.predict(&[100.0]), 0);
    }

    #[test]
    fn xor_on_two_numerics_is_learned() {
        let mut d = Dataset::new(
            vec![AttrSpec::numeric("x"), AttrSpec::numeric("y")],
            vec!["a".into(), "b".into()],
        );
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..400 {
            let x: f64 = rng.gen_range(0.0..1.0);
            let y: f64 = rng.gen_range(0.0..1.0);
            let label = usize::from((x > 0.5) ^ (y > 0.5));
            d.push(&[x, y], label);
        }
        let t = DecisionTree::fit(&d, &TreeConfig::default());
        let mut errors = 0;
        for i in 0..d.len() {
            if t.predict(d.row(i)) != d.label(i) {
                errors += 1;
            }
        }
        assert!(errors < 20, "errors = {errors}");
    }

    #[test]
    fn categorical_split_is_used() {
        let mut d = Dataset::new(
            vec![AttrSpec::categorical("c", 3)],
            vec!["a".into(), "b".into(), "c".into()],
        );
        for _ in 0..10 {
            d.push(&[0.0], 0);
            d.push(&[1.0], 1);
            d.push(&[2.0], 2);
        }
        let t = DecisionTree::fit(&d, &TreeConfig::default());
        assert_eq!(t.predict(&[0.0]), 0);
        assert_eq!(t.predict(&[1.0]), 1);
        assert_eq!(t.predict(&[2.0]), 2);
    }

    #[test]
    fn unseen_category_falls_back_to_majority() {
        let mut d = Dataset::new(
            vec![AttrSpec::categorical("c", 5)],
            vec!["a".into(), "b".into()],
        );
        for _ in 0..10 {
            d.push(&[0.0], 0);
        }
        for _ in 0..30 {
            d.push(&[1.0], 1);
        }
        let t = DecisionTree::fit(&d, &TreeConfig::default());
        // Code 4 was never seen populated; must not panic.
        let p = t.predict(&[4.0]);
        assert!(p == 0 || p == 1);
    }

    #[test]
    fn pruning_shrinks_noisy_trees() {
        let mut rng = StdRng::seed_from_u64(11);
        let pts: Vec<(f64, usize)> = (0..500)
            .map(|i| {
                let y = usize::from(i >= 250) ^ usize::from(rng.gen_bool(0.08));
                (i as f64, y)
            })
            .collect();
        let d = numeric_ds(&pts);
        let unpruned = DecisionTree::fit(
            &d,
            &TreeConfig {
                prune: false,
                ..Default::default()
            },
        );
        let pruned = DecisionTree::fit(&d, &TreeConfig::default());
        assert!(
            pruned.n_nodes() < unpruned.n_nodes(),
            "pruned {} !< unpruned {}",
            pruned.n_nodes(),
            unpruned.n_nodes()
        );
        // Pruned tree still gets the signal right.
        assert_eq!(pruned.predict(&[10.0]), 0);
        assert_eq!(pruned.predict(&[490.0]), 1);
    }

    #[test]
    fn weights_shift_the_majority() {
        let mut d = Dataset::new(vec![AttrSpec::numeric("x")], vec!["a".into(), "b".into()]);
        // 3 light examples of class 0, 1 heavy example of class 1, all at
        // the same x → a single leaf whose majority is the heavy class.
        d.push_weighted(&[1.0], 0, 1.0);
        d.push_weighted(&[1.0], 0, 1.0);
        d.push_weighted(&[1.0], 0, 1.0);
        d.push_weighted(&[1.0], 1, 10.0);
        let t = DecisionTree::fit(&d, &TreeConfig::default());
        assert_eq!(t.predict(&[1.0]), 1);
    }

    #[test]
    fn min_split_blocks_tiny_partitions() {
        let pts: Vec<(f64, usize)> = vec![(1.0, 0), (2.0, 1)];
        let d = numeric_ds(&pts);
        let t = DecisionTree::fit(
            &d,
            &TreeConfig {
                min_split: 2.0,
                ..Default::default()
            },
        );
        // Splitting 2 examples would leave 1 per side < min_split.
        assert_eq!(t.n_nodes(), 1);
    }

    #[test]
    fn dump_mentions_attribute_names() {
        let pts: Vec<(f64, usize)> = (0..40).map(|i| (i as f64, usize::from(i >= 20))).collect();
        let d = numeric_ds(&pts);
        let t = DecisionTree::fit(&d, &TreeConfig::default());
        let s = t.dump();
        assert!(s.contains("x <="), "dump: {s}");
    }

    #[test]
    fn depth_cap_is_respected() {
        let mut rng = StdRng::seed_from_u64(5);
        let pts: Vec<(f64, usize)> = (0..256)
            .map(|_| (rng.gen_range(0.0..1.0), rng.gen_range(0..2)))
            .collect();
        let d = numeric_ds(&pts);
        let t = DecisionTree::fit(
            &d,
            &TreeConfig {
                max_depth: 3,
                prune: false,
                ..Default::default()
            },
        );
        assert!(t.depth() <= 4);
    }
}
