//! Online-refinement convergence report: starts from a deliberately
//! mispredicted plan (forced plain CSR on a banded matrix — exactly the
//! compile-time mistake the PR 10 refiner exists to catch), arms its
//! execute telemetry, and drives the same `classify_plan` →
//! `probe_candidate` → adopt loop the `spmv-serve` background refiner
//! runs, until the classifier reports the plan on-model. Emits
//! `BENCH_adaptive.json` comparing the mispredicted, refined, and
//! oracle-best (exhaustive config grid) GFLOP/s, with the acceptance
//! gate `refined ≥ 0.9 × oracle` reported as `"converged"`.
//!
//! Every plan — mispredicted, every refinement candidate, and every
//! oracle tier — is asserted bit-for-bit against the sequential CSR
//! reference; `probe_candidate` additionally rejects any candidate
//! whose probe output differs bitwise from the incumbent's.
//!
//! Regenerate with `cargo run --release -p spmv-bench --bin bench_adaptive`.
//!
//! Knobs: `SPMV_BENCH_ITERS` (timed iterations, default 20),
//! `SPMV_BENCH_ADAPTIVE_OUT` (output path, default
//! `BENCH_adaptive.json`), `SPMV_BENCH_TINY=1` (small synthetic banded
//! matrix — the CI smoke mode), and the serving-layer refinement knobs
//! `SPMV_REFINE` / `SPMV_REFINE_DIVERGENCE` (this bench defaults the
//! mode to `auto` when `SPMV_REFINE` is unset, since an off-mode
//! convergence report would be vacuous).

use spmv_autotune::prelude::*;
use spmv_bench::setup::env_usize;
use spmv_serve::{classify_plan, probe_candidate, RefineConfig, RefineMode};
use spmv_sparse::{gen, suite, CsrMatrix, IndexKind};
use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;

/// Cap on refinement rounds. The loop normally stops after one adopt
/// (the refined plan classifies on-model); the cap only guards against
/// a classifier that keeps suggesting.
const MAX_ROUNDS: usize = 4;

/// The oracle grid: every tier the specialized-kernel report compares,
/// minus the forced fast paths (subsumed by `auto` on a banded input).
fn oracle_tiers() -> Vec<(&'static str, PlanConfig)> {
    vec![
        (
            "csr",
            PlanConfig {
                pack: false,
                cache_block: false,
                specialize: false,
                ..PlanConfig::default()
            },
        ),
        (
            "u32",
            PlanConfig {
                index: IndexPolicy::Fixed(IndexKind::U32),
                cache_block: false,
                specialize: false,
                ..PlanConfig::default()
            },
        ),
        (
            "pr5-auto",
            PlanConfig {
                specialize: false,
                ..PlanConfig::default()
            },
        ),
        ("auto", PlanConfig::default()),
    ]
}

/// Best-of-3 seconds per execute. The batch starts at `iters` and is
/// grown until one timed window spans ≥ 5 ms — the convergence gate
/// compares plans whose per-execute gap is the signal, so the windows
/// must be long enough that scheduler jitter cannot fake a 10% miss
/// (the CI smoke mode runs `SPMV_BENCH_ITERS=3` on a ~17 µs kernel).
fn time_per_iter(iters: usize, mut f: impl FnMut()) -> f64 {
    for _ in 0..2 {
        f();
    }
    let mut batch = iters.max(1);
    loop {
        let t0 = Instant::now();
        for _ in 0..batch {
            f();
        }
        if t0.elapsed().as_secs_f64() >= 5e-3 || batch >= 1 << 20 {
            break;
        }
        batch *= 4;
    }
    let mut best = f64::INFINITY;
    for _ in 0..5 {
        let t0 = Instant::now();
        for _ in 0..batch {
            f();
        }
        best = best.min(t0.elapsed().as_secs_f64());
    }
    best / batch as f64
}

/// Spins the incumbent for ~200 ms before any timed window. The first
/// plan measured in a cold process is systematically slow (frequency
/// ramp, allocator and page-cache warmup), which would bias the
/// mispredicted-vs-oracle comparison in the refiner's favour.
fn warmup(plan: &VerifiedPlan<f32>, a: &CsrMatrix<f32>, v: &[f32]) {
    let mut u = vec![0.0f32; a.n_rows()];
    let t0 = Instant::now();
    while t0.elapsed().as_secs_f64() < 0.2 {
        plan.execute_unchecked(a, v, &mut u).unwrap();
    }
}

fn gflops(nnz: usize, secs_per_iter: f64) -> f64 {
    if secs_per_iter <= 0.0 {
        return 0.0;
    }
    2.0 * nnz as f64 / secs_per_iter / 1e9
}

fn bottleneck_name(b: Bottleneck) -> &'static str {
    match b {
        Bottleneck::MemoryBound => "memory-bound",
        Bottleneck::Imbalanced => "imbalanced",
        Bottleneck::LatencyBound => "latency-bound",
        Bottleneck::OnModel => "on-model",
    }
}

fn compile_verified(
    a: &CsrMatrix<f32>,
    strategy: &Strategy,
    config: PlanConfig,
    workers: usize,
) -> VerifiedPlan<f32> {
    let backend = Box::new(NativeCpuBackend::new().with_workers(workers));
    SpmvPlan::compile_with(a, strategy.clone(), backend, config)
        .verify(a)
        .expect("plan must verify")
}

/// Times `plan` best-of-3 and asserts its output bit-for-bit against
/// the sequential reference. The timed executes double as telemetry
/// samples, arming the bottleneck classifier (≥ 2 + 3·iters ≫ the
/// `min_executes` floor).
fn measure(
    label: &str,
    plan: &VerifiedPlan<f32>,
    a: &CsrMatrix<f32>,
    v: &[f32],
    reference: &[f32],
    iters: usize,
) -> f64 {
    let mut u = vec![0.0f32; a.n_rows()];
    let secs_per_iter = time_per_iter(iters, || {
        plan.execute_unchecked(a, v, &mut u).unwrap();
    });
    assert_eq!(
        u.as_slice(),
        reference,
        "{label} diverges from the CSR reference"
    );
    gflops(a.nnz(), secs_per_iter)
}

struct Round {
    gflops: f64,
    bottleneck: &'static str,
    action: &'static str,
    probe_speedup: f64,
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn main() {
    let iters = env_usize("SPMV_BENCH_ITERS", 20);
    let tiny = std::env::var("SPMV_BENCH_TINY").is_ok_and(|s| s == "1");
    let out_path = std::env::var("SPMV_BENCH_ADAPTIVE_OUT")
        .unwrap_or_else(|_| "BENCH_adaptive.json".to_string());
    let workers = spmv_parallel::num_threads();

    let mut cfg = RefineConfig::from_env();
    if std::env::var("SPMV_REFINE").is_err() {
        cfg.mode = RefineMode::Auto;
    }
    // The serve-layer default of best-of-3 single executes is tuned for
    // a live process that cannot afford long probes; the report wants a
    // stable verdict, and 40 extra ~µs executes are free here.
    cfg.probe_iters = cfg.probe_iters.max(40);

    let (name, a): (String, CsrMatrix<f32>) = if tiny {
        ("tiny-banded7".into(), gen::banded::<f32>(4_000, 3, 2))
    } else {
        let meta = suite::by_name("denormal").expect("suite matrix");
        ("denormal".into(), meta.generate())
    };
    eprintln!(
        "  refining {name} ({} x {}, {} nnz, workers {workers}) …",
        a.n_rows(),
        a.n_cols(),
        a.nnz()
    );

    let v: Vec<f32> = (0..a.n_cols()).map(|i| ((i % 9) as f32) - 4.0).collect();
    let reference = a.spmv_seq_alloc(&v).unwrap();
    let strategy = Strategy {
        binning: BinningScheme::Coarse { u: 10 },
        kernels: vec![KernelId::Subvector(8); 8],
    };

    // The misprediction: a compile-time pick of plain CSR for a banded
    // matrix (no packing, no blocking, no structure fast paths).
    let mispredicted_cfg = PlanConfig {
        pack: false,
        cache_block: false,
        specialize: false,
        ..PlanConfig::default()
    };
    let mispredicted: Arc<VerifiedPlan<f32>> =
        Arc::new(compile_verified(&a, &strategy, mispredicted_cfg, workers));
    let mut incumbent = Arc::clone(&mispredicted);
    warmup(&incumbent, &a, &v);

    // The refinement loop the serve-layer background thread runs, driven
    // synchronously: measure (arming telemetry), classify, probe, adopt
    // only what measures faster. In observe/off modes no candidate is
    // ever built, matching the server's gating.
    let mut rounds: Vec<Round> = Vec::new();
    let mut adopted = 0usize;
    for round in 0..MAX_ROUNDS {
        let g = measure(
            &format!("{name}/round{round}"),
            &incumbent,
            &a,
            &v,
            &reference,
            iters,
        );
        let (bottleneck, suggestion) = classify_plan(&incumbent, &cfg.adapt);
        let bname = bottleneck_name(bottleneck);
        eprintln!("  round {round}: {g:.3} GFLOP/s, classified {bname}");
        let Some(suggestion) = suggestion else {
            rounds.push(Round {
                gflops: g,
                bottleneck: bname,
                action: "stop",
                probe_speedup: 0.0,
            });
            break;
        };
        if cfg.mode != RefineMode::Auto {
            rounds.push(Round {
                gflops: g,
                bottleneck: bname,
                action: "observe",
                probe_speedup: 0.0,
            });
            break;
        }
        match probe_candidate(&a, &incumbent, suggestion, workers, &cfg) {
            Ok(report) => {
                let speedup = report.incumbent_ns as f64 / report.candidate_ns.max(1) as f64;
                if report.improved {
                    incumbent = report.candidate;
                    adopted += 1;
                    rounds.push(Round {
                        gflops: g,
                        bottleneck: bname,
                        action: "adopted",
                        probe_speedup: speedup,
                    });
                } else {
                    rounds.push(Round {
                        gflops: g,
                        bottleneck: bname,
                        action: "kept",
                        probe_speedup: speedup,
                    });
                    break;
                }
            }
            Err(e) => panic!("{name}/round{round}: refinement probe failed: {e}"),
        }
    }

    // Final measurement phase: the mispredicted plan, the refined
    // incumbent, and every oracle tier are timed back-to-back in one
    // warmed-up phase, so the convergence ratio compares like-for-like
    // conditions rather than a cold round 0 against warm oracle runs.
    let mispredicted_gflops = measure(
        &format!("{name}/mispredicted"),
        &mispredicted,
        &a,
        &v,
        &reference,
        iters,
    );
    let refined_gflops = measure(
        &format!("{name}/refined"),
        &incumbent,
        &a,
        &v,
        &reference,
        iters,
    );
    eprintln!(
        "  final: mispredicted {mispredicted_gflops:.3}, refined {refined_gflops:.3} GFLOP/s"
    );

    // Oracle: exhaustive best over the config grid, each tier verified
    // and asserted bit-for-bit before timing.
    let mut oracle_gflops = 0.0;
    let mut oracle_tier = "";
    let mut tier_rows: Vec<(&'static str, f64)> = Vec::new();
    for (tier, config) in oracle_tiers() {
        let plan = compile_verified(&a, &strategy, config, workers);
        let g = measure(&format!("{name}/{tier}"), &plan, &a, &v, &reference, iters);
        eprintln!("  oracle tier {tier}: {g:.3} GFLOP/s");
        if g > oracle_gflops {
            oracle_gflops = g;
            oracle_tier = tier;
        }
        tier_rows.push((tier, g));
    }

    let refined_vs_oracle = if oracle_gflops > 0.0 {
        refined_gflops / oracle_gflops
    } else {
        0.0
    };
    let converged = refined_vs_oracle >= 0.9;

    let mut json = String::new();
    writeln!(json, "{{").unwrap();
    writeln!(json, "  \"bench\": \"adaptive\",").unwrap();
    writeln!(
        json,
        "  \"hardware_threads\": {},",
        spmv_parallel::machine_threads()
    )
    .unwrap();
    writeln!(json, "  \"pool_threads\": {workers},").unwrap();
    writeln!(json, "  \"iters\": {iters},").unwrap();
    writeln!(json, "  \"tiny\": {tiny},").unwrap();
    writeln!(
        json,
        "  \"mode\": \"{}\",",
        match cfg.mode {
            RefineMode::Off => "off",
            RefineMode::Observe => "observe",
            RefineMode::Auto => "auto",
        }
    )
    .unwrap();
    writeln!(
        json,
        "  \"matrix\": {{\"name\": \"{}\", \"m\": {}, \"n\": {}, \"nnz\": {}}},",
        json_escape(&name),
        a.n_rows(),
        a.n_cols(),
        a.nnz()
    )
    .unwrap();
    writeln!(json, "  \"mispredicted_gflops\": {mispredicted_gflops:.3},").unwrap();
    writeln!(json, "  \"refined_gflops\": {refined_gflops:.3},").unwrap();
    writeln!(json, "  \"oracle_gflops\": {oracle_gflops:.3},").unwrap();
    writeln!(json, "  \"oracle_tier\": \"{oracle_tier}\",").unwrap();
    writeln!(
        json,
        "  \"refined_vs_mispredicted\": {:.3},",
        if mispredicted_gflops > 0.0 {
            refined_gflops / mispredicted_gflops
        } else {
            0.0
        }
    )
    .unwrap();
    writeln!(json, "  \"refined_vs_oracle\": {refined_vs_oracle:.3},").unwrap();
    writeln!(json, "  \"adopted\": {adopted},").unwrap();
    writeln!(json, "  \"rounds\": [").unwrap();
    for (i, r) in rounds.iter().enumerate() {
        write!(
            json,
            "    {{\"round\": {i}, \"gflops\": {:.3}, \"bottleneck\": \"{}\", \
             \"action\": \"{}\", \"probe_speedup\": {:.3}}}",
            r.gflops, r.bottleneck, r.action, r.probe_speedup
        )
        .unwrap();
        writeln!(json, "{}", if i + 1 < rounds.len() { "," } else { "" }).unwrap();
    }
    writeln!(json, "  ],").unwrap();
    writeln!(json, "  \"oracle_tiers\": [").unwrap();
    for (i, (tier, g)) in tier_rows.iter().enumerate() {
        write!(json, "    {{\"tier\": \"{tier}\", \"gflops\": {g:.3}}}").unwrap();
        writeln!(json, "{}", if i + 1 < tier_rows.len() { "," } else { "" }).unwrap();
    }
    writeln!(json, "  ],").unwrap();
    writeln!(json, "  \"converged\": {converged}").unwrap();
    writeln!(json, "}}").unwrap();

    std::fs::write(&out_path, &json).expect("write report");
    println!("{json}");
    eprintln!("wrote {out_path}");

    if cfg.mode == RefineMode::Auto {
        assert!(
            converged,
            "refined plan ({refined_gflops:.3} GFLOP/s) did not converge within 10% of \
             oracle-best ({oracle_gflops:.3} GFLOP/s, tier {oracle_tier})"
        );
    }
}
