//! k-fold cross-validation.

use crate::dataset::Dataset;
use crate::metrics::ConfusionMatrix;
use crate::tree::{DecisionTree, TreeConfig};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Deterministically split `[0, n)` into `k` folds of near-equal size.
pub fn fold_indices(n: usize, k: usize, seed: u64) -> Vec<Vec<usize>> {
    assert!(k >= 2 && k <= n, "need 2 <= k <= n");
    let mut idx: Vec<usize> = (0..n).collect();
    idx.shuffle(&mut StdRng::seed_from_u64(seed));
    let mut folds: Vec<Vec<usize>> = vec![Vec::new(); k];
    for (pos, i) in idx.into_iter().enumerate() {
        folds[pos % k].push(i);
    }
    folds
}

/// Run k-fold cross-validation of a decision tree on `data`, returning
/// the pooled confusion matrix over all held-out folds.
pub fn cross_validate(data: &Dataset, config: &TreeConfig, k: usize, seed: u64) -> ConfusionMatrix {
    let folds = fold_indices(data.len(), k, seed);
    let mut cm = ConfusionMatrix::new(data.n_classes());
    for held in 0..k {
        let train_idx: Vec<usize> = folds
            .iter()
            .enumerate()
            .filter(|&(f, _)| f != held)
            .flat_map(|(_, v)| v.iter().copied())
            .collect();
        let train = data.subset(&train_idx);
        let tree = DecisionTree::fit(&train, config);
        for &i in &folds[held] {
            cm.record(data.label(i), tree.predict(data.row(i)));
        }
    }
    cm
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::AttrSpec;

    #[test]
    fn folds_partition_the_index_space() {
        let folds = fold_indices(103, 5, 9);
        assert_eq!(folds.len(), 5);
        let mut all: Vec<usize> = folds.iter().flatten().copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..103).collect::<Vec<_>>());
        let sizes: Vec<usize> = folds.iter().map(Vec::len).collect();
        assert!(sizes.iter().max().unwrap() - sizes.iter().min().unwrap() <= 1);
    }

    #[test]
    fn cv_on_learnable_problem_has_low_error() {
        let mut d = Dataset::new(vec![AttrSpec::numeric("x")], vec!["a".into(), "b".into()]);
        for i in 0..200 {
            d.push(&[i as f64], usize::from(i >= 100));
        }
        let cm = cross_validate(&d, &TreeConfig::default(), 5, 1);
        assert_eq!(cm.total(), 200);
        assert!(cm.error_rate() < 0.05, "error = {}", cm.error_rate());
    }

    #[test]
    fn cv_is_deterministic() {
        let mut d = Dataset::new(vec![AttrSpec::numeric("x")], vec!["a".into(), "b".into()]);
        for i in 0..60 {
            d.push(&[(i % 17) as f64], usize::from(i % 3 == 0));
        }
        let a = cross_validate(&d, &TreeConfig::default(), 4, 7);
        let b = cross_validate(&d, &TreeConfig::default(), 4, 7);
        assert_eq!(a, b);
    }
}
