//! Write-set disjointness checker: statically prove that a plan's
//! dispatch table writes every output index exactly once.
//!
//! [`SpmvPlan::execute`] launches one kernel per populated bin, and the
//! kernels write `u[r]` through raw pointers (`SliceWriter`) from many
//! threads. That is only sound when, across *all* bins, every row index
//! is (a) in bounds and (b) owned by exactly one launch — and, for the
//! NNZ-balanced Subvector/Vector launches on the native CPU backend,
//! when the per-launch cut positions partition the bin's row list.
//!
//! [`check_dispatch`] proves all of that from the [`BinDispatch`] table
//! and the CSR row pointer in one O(m + nnz-scan) pass. Plans that pass
//! become a [`VerifiedPlan`] (see [`SpmvPlan::verify`]) which unlocks
//! [`VerifiedPlan::execute_unchecked`] — the fast path that drops the
//! per-execute O(m) fingerprint scan from the hot loop. Failures are a
//! typed [`VerifyError`] naming the bin, kernel id, and offending row
//! range.
//!
//! [`SpmvPlan::execute`]: crate::plan::SpmvPlan::execute
//! [`SpmvPlan::verify`]: crate::plan::SpmvPlan::verify
//! [`VerifiedPlan`]: crate::plan::VerifiedPlan
//! [`VerifiedPlan::execute_unchecked`]: crate::plan::VerifiedPlan::execute_unchecked

use crate::kernels::cpu::rows_nnz_cuts;
use crate::kernels::KernelId;
use crate::plan::{for_each_tile_row, BinDispatch, BinFormat, BinPayload, ShardedTiles, Tile};
use crate::solve::SolveStep;
use spmv_sparse::solve::SolveDirection;
use spmv_sparse::{CsrMatrix, Scalar};

/// Why a dispatch table failed write-set verification.
#[derive(Clone, Debug, PartialEq)]
pub enum VerifyError {
    /// The matrix handed to [`SpmvPlan::verify`] is not the pattern the
    /// plan was compiled for — the proof would be about the wrong
    /// matrix.
    ///
    /// [`SpmvPlan::verify`]: crate::plan::SpmvPlan::verify
    PatternMismatch {
        /// Fingerprint the plan was compiled against.
        expected: crate::plan::PatternFingerprint,
        /// Fingerprint of the matrix handed to `verify`.
        got: crate::plan::PatternFingerprint,
    },
    /// A row id in a bin's row list is outside `[0, m)`.
    RowOutOfBounds {
        /// Bin whose row list contains the bad id.
        bin_id: usize,
        /// Kernel assigned to that bin.
        kernel: KernelId,
        /// The offending row id.
        row: u32,
        /// Number of matrix rows.
        m: usize,
    },
    /// Two launches would both write some rows: either two bins share
    /// rows, or one bin lists a row twice (then the two bins coincide).
    OverlappingRows {
        /// First bin writing the range.
        bin_a: usize,
        /// Its kernel.
        kernel_a: KernelId,
        /// Second bin writing the range.
        bin_b: usize,
        /// Its kernel.
        kernel_b: KernelId,
        /// Inclusive row range `[first, last]` written by both.
        rows: (u32, u32),
    },
    /// Rows no launch writes — `execute` would leave stale values there.
    UncoveredRows {
        /// Inclusive row range `[first, last]` of the first uncovered run.
        rows: (u32, u32),
    },
    /// A bin's cached NNZ count disagrees with the row pointer, so the
    /// NNZ-balanced split would be computed from wrong totals.
    BinNnzMismatch {
        /// The inconsistent bin.
        bin_id: usize,
        /// Its kernel.
        kernel: KernelId,
        /// NNZ stored in the dispatch entry.
        stored: usize,
        /// NNZ the row pointer actually gives.
        actual: usize,
    },
    /// The NNZ-balanced cut positions for a Subvector/Vector launch do
    /// not partition the bin's row list.
    SplitNotPartition {
        /// The bin whose split is broken.
        bin_id: usize,
        /// Its kernel.
        kernel: KernelId,
        /// Partition count that produced the broken cuts.
        parts: usize,
        /// What property failed.
        detail: String,
    },
    /// A bin's packed payload disagrees with its dispatch entry: wrong
    /// format recorded, wrong row set, or slab contents that do not
    /// mirror the CSR entries slot-for-slot.
    PackedPayloadInvalid {
        /// The bin whose payload is broken.
        bin_id: usize,
        /// Its kernel.
        kernel: KernelId,
        /// What property failed.
        detail: String,
    },
    /// A bin's cache-blocked execution premise is broken: the recorded
    /// strip width disagrees with the payload, the strip width is zero
    /// (the strip walk would not advance), or the bin's rows are not
    /// column-sorted (blocking would still be correct but the plan's
    /// locality claim would be false — compilation never emits this).
    BlockedPayloadInvalid {
        /// The bin whose blocked payload is broken.
        bin_id: usize,
        /// Its kernel.
        kernel: KernelId,
        /// What property failed.
        detail: String,
    },
    /// A bin's structure-specialized payload (dense-run, banded, or
    /// row-run) fails its re-derivation proof against the CSR arrays —
    /// the structural premise its unchecked-gather kernel relies on
    /// (runs really contiguous, bands really complete, run rows really
    /// identical) does not hold, so promotion must refuse it.
    SpecializedPayloadInvalid {
        /// The bin whose specialized payload is broken.
        bin_id: usize,
        /// Its kernel.
        kernel: KernelId,
        /// What property failed.
        detail: String,
    },
    /// The fused tile queue does not partition some bin's work — a tile
    /// range overlaps, gaps, or runs past the end, so the fused execute
    /// would double-write or skip rows.
    TilesNotPartition {
        /// The bin whose tiles are broken.
        bin_id: usize,
        /// What property failed.
        detail: String,
    },
    /// The RHS-block decomposition the batched executor would use for
    /// some batch width `K` fails to partition the column range `[0, K)`
    /// into kernel-supported widths — batched execution would
    /// double-write or skip output columns.
    BatchBlocksNotPartition {
        /// The batch width whose decomposition is broken.
        k: usize,
        /// What property failed.
        detail: String,
    },
    /// The shard decomposition is not a sound refinement of the tile
    /// queue: the shard queues fail to partition the tile ids, a shard's
    /// recorded write set disagrees with the rows its tiles own, two
    /// shards claim the same output row, or a shard's `x` window misses
    /// a column its rows gather — the sharded executor's first-touch
    /// writes or locality claims would be unsound.
    ShardsNotPartition {
        /// The shard the violation was detected on.
        shard: usize,
        /// What property failed.
        detail: String,
    },
    /// The matrix handed to [`SolvePlan::verify`] fingerprint-matches
    /// the plan but disagrees with its structure snapshot — possible
    /// because the fingerprint hashes only the row pointer, and fatal
    /// for a solve proof because dependency order lives in the column
    /// indices.
    ///
    /// [`SolvePlan::verify`]: crate::solve::SolvePlan::verify
    SolveStructureMismatch {
        /// Which snapshot array disagreed (`"row_ptr"` / `"col_idx"`).
        what: &'static str,
    },
    /// A triangular solve needs a square system; this matrix is not.
    SolveNotSquare {
        /// Row count.
        n_rows: usize,
        /// Column count.
        n_cols: usize,
    },
    /// A scheduled row id is outside `[0, m)`.
    SolveRowOutOfBounds {
        /// The offending row id.
        row: u32,
        /// Number of matrix rows.
        m: usize,
    },
    /// A row appears in two schedule slots — two workers (or two steps)
    /// would both write `x[row]`.
    SolveRowRepeated {
        /// The row scheduled twice.
        row: u32,
        /// Step that scheduled it first.
        first_step: usize,
        /// Step that scheduled it again.
        step: usize,
    },
    /// A row appears in no step — the solve would leave `x[row]` stale.
    SolveRowUnscheduled {
        /// The unscheduled row.
        row: usize,
    },
    /// A stored column index is outside the system — the kernel's
    /// gather of `x[col]` would be out of bounds.
    SolveColOutOfBounds {
        /// Row whose entry is bad.
        row: usize,
        /// The out-of-range column.
        col: u32,
        /// System dimension.
        n: usize,
    },
    /// An entry sits on the wrong side of the diagonal for the solve's
    /// direction — the matrix is not triangular the way the schedule
    /// assumes.
    SolveOffTriangle {
        /// Direction the schedule was built for.
        direction: SolveDirection,
        /// Row of the witness entry.
        row: usize,
        /// Column of the witness entry.
        col: u32,
    },
    /// A row has no structural diagonal entry to divide by.
    SolveMissingDiagonal {
        /// The diagonal-less row.
        row: usize,
    },
    /// A row runs before a row it reads is finalised: its dependency
    /// sits in the same or a later step (same-step reads are only legal
    /// at earlier positions of the *same serial chunk*). Executing this
    /// schedule would race.
    SolveDependencyViolated {
        /// The row that reads too early.
        row: usize,
        /// Step the reading row is scheduled in.
        row_step: usize,
        /// The dependency it reads.
        col: usize,
        /// Step the dependency is scheduled in.
        col_step: usize,
    },
    /// A parallel step's cut positions do not partition its row list
    /// across the worker team — workers would overlap or skip rows.
    SolveCutsInvalid {
        /// The step whose cuts are broken.
        step: usize,
        /// What property failed.
        detail: String,
    },
}

impl std::fmt::Display for VerifyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VerifyError::PatternMismatch { expected, got } => write!(
                f,
                "verify called with the wrong matrix: plan is for {}x{}/{} nnz \
                 (hash {:#x}), got {}x{}/{} nnz (hash {:#x})",
                expected.m,
                expected.n,
                expected.nnz,
                expected.row_ptr_hash,
                got.m,
                got.n,
                got.nnz,
                got.row_ptr_hash,
            ),
            VerifyError::RowOutOfBounds {
                bin_id,
                kernel,
                row,
                m,
            } => write!(
                f,
                "bin {bin_id} ({kernel}): row {row} out of bounds (m = {m})"
            ),
            VerifyError::OverlappingRows {
                bin_a,
                kernel_a,
                bin_b,
                kernel_b,
                rows,
            } => write!(
                f,
                "bins {bin_a} ({kernel_a}) and {bin_b} ({kernel_b}) both write rows {}..={}",
                rows.0, rows.1
            ),
            VerifyError::UncoveredRows { rows } => {
                write!(f, "rows {}..={} are written by no launch", rows.0, rows.1)
            }
            VerifyError::BinNnzMismatch {
                bin_id,
                kernel,
                stored,
                actual,
            } => write!(
                f,
                "bin {bin_id} ({kernel}): cached nnz {stored} != row-pointer nnz {actual}"
            ),
            VerifyError::SplitNotPartition {
                bin_id,
                kernel,
                parts,
                detail,
            } => write!(
                f,
                "bin {bin_id} ({kernel}): nnz-balanced split with {parts} parts is not a \
                 partition: {detail}"
            ),
            VerifyError::PackedPayloadInvalid {
                bin_id,
                kernel,
                detail,
            } => write!(
                f,
                "bin {bin_id} ({kernel}): packed payload invalid: {detail}"
            ),
            VerifyError::BlockedPayloadInvalid {
                bin_id,
                kernel,
                detail,
            } => write!(
                f,
                "bin {bin_id} ({kernel}): blocked payload invalid: {detail}"
            ),
            VerifyError::SpecializedPayloadInvalid {
                bin_id,
                kernel,
                detail,
            } => write!(
                f,
                "bin {bin_id} ({kernel}): specialized payload invalid: {detail}"
            ),
            VerifyError::TilesNotPartition { bin_id, detail } => {
                write!(f, "bin {bin_id}: fused tiles are not a partition: {detail}")
            }
            VerifyError::BatchBlocksNotPartition { k, detail } => write!(
                f,
                "RHS blocks for batch width {k} are not a partition: {detail}"
            ),
            VerifyError::ShardsNotPartition { shard, detail } => {
                write!(f, "shard {shard}: shard cover is not a partition: {detail}")
            }
            VerifyError::SolveStructureMismatch { what } => write!(
                f,
                "matrix {what} disagrees with the plan's structure snapshot \
                 (same fingerprint, different pattern)"
            ),
            VerifyError::SolveNotSquare { n_rows, n_cols } => write!(
                f,
                "triangular solve needs a square system, got {n_rows}x{n_cols}"
            ),
            VerifyError::SolveRowOutOfBounds { row, m } => {
                write!(f, "scheduled row {row} out of bounds (m = {m})")
            }
            VerifyError::SolveRowRepeated {
                row,
                first_step,
                step,
            } => write!(
                f,
                "row {row} scheduled twice: steps {first_step} and {step}"
            ),
            VerifyError::SolveRowUnscheduled { row } => {
                write!(f, "row {row} appears in no step of the schedule")
            }
            VerifyError::SolveColOutOfBounds { row, col, n } => {
                write!(f, "row {row} gathers column {col} out of bounds (n = {n})")
            }
            VerifyError::SolveOffTriangle {
                direction,
                row,
                col,
            } => write!(
                f,
                "{direction} solve schedule over a non-triangular matrix: row {row} \
                 has an off-triangle entry in column {col}"
            ),
            VerifyError::SolveMissingDiagonal { row } => {
                write!(f, "row {row} has no structural diagonal entry to divide by")
            }
            VerifyError::SolveDependencyViolated {
                row,
                row_step,
                col,
                col_step,
            } => write!(
                f,
                "row {row} (step {row_step}) reads row {col} which is not finalised \
                 until step {col_step}"
            ),
            VerifyError::SolveCutsInvalid { step, detail } => {
                write!(f, "step {step}: worker cuts are not a partition: {detail}")
            }
        }
    }
}

impl std::error::Error for VerifyError {}

/// Prove the write-set invariants of `dispatch` against `a`'s row
/// pointer:
///
/// 1. every listed row id is in `[0, m)`;
/// 2. across all bins, every row of the matrix is listed exactly once
///    (disjointness + coverage);
/// 3. each bin's cached NNZ matches the row pointer;
/// 4. for Subvector/Vector bins, the NNZ-balanced cut positions used by
///    the native CPU backend partition the bin's row list for every
///    plausible partition count (the split is deterministic, so checking
///    the cut properties *is* checking the runtime's write sets).
///
/// O(m) space, O(m + Σ|rows|) time plus O(|rows|) per balanced bin.
pub fn check_dispatch<T: Scalar>(
    a: &CsrMatrix<T>,
    dispatch: &[BinDispatch],
) -> Result<(), VerifyError> {
    let m = a.n_rows();
    const UNOWNED: u32 = u32::MAX;
    let mut owner: Vec<u32> = vec![UNOWNED; m];
    for (e, d) in dispatch.iter().enumerate() {
        let mut nnz = 0usize;
        for &r in &d.rows {
            let ri = r as usize;
            if ri >= m {
                return Err(VerifyError::RowOutOfBounds {
                    bin_id: d.bin_id,
                    kernel: d.kernel,
                    row: r,
                    m,
                });
            }
            if owner[ri] != UNOWNED {
                let prev = &dispatch[owner[ri] as usize];
                return Err(VerifyError::OverlappingRows {
                    bin_a: prev.bin_id,
                    kernel_a: prev.kernel,
                    bin_b: d.bin_id,
                    kernel_b: d.kernel,
                    rows: overlap_range(&prev.rows, &d.rows, e == owner[ri] as usize, r),
                });
            }
            owner[ri] = e as u32;
            nnz += a.row_nnz(ri);
        }
        if nnz != d.nnz {
            return Err(VerifyError::BinNnzMismatch {
                bin_id: d.bin_id,
                kernel: d.kernel,
                stored: d.nnz,
                actual: nnz,
            });
        }
    }
    if let Some(first) = owner.iter().position(|&o| o == UNOWNED) {
        let mut last = first;
        while last + 1 < m && owner[last + 1] == UNOWNED {
            last += 1;
        }
        return Err(VerifyError::UncoveredRows {
            rows: (first as u32, last as u32),
        });
    }
    for d in dispatch {
        if matches!(d.kernel, KernelId::Subvector(_) | KernelId::Vector) {
            check_balanced_split(a, d)?;
        }
    }
    Ok(())
}

/// Prove the packed/fused side of a plan against `a`:
///
/// 1. the payload table is aligned with the dispatch table, and each
///    entry's materialised payload matches the recorded [`BinFormat`]
///    (a `PackedSell` format with a CSR payload — or vice versa — means
///    the plan would execute a different format than it reports);
/// 2. every packed payload mirrors its bin exactly: same row multiset,
///    chunks length-sorted with consistent offsets, every non-padding
///    slot pointing at the CSR entry it claims, every padding slot
///    marked ([`spmv_sparse::packed::PackedSell::check_against`]);
/// 3. the fused tile queue (when present) partitions each bin's work —
///    chunk ranges for packed bins, row-list spans for CSR bins — with
///    no overlap, no gap, and no overrun.
///
/// Together with [`check_dispatch`] (rows owned exactly once across
/// bins) this proves the fused executor's write set: every output index
/// written by exactly one tile. O(slots + Σ|rows| + |tiles| log |tiles|).
pub fn check_payloads<T: Scalar>(
    a: &CsrMatrix<T>,
    dispatch: &[BinDispatch],
    payloads: &[BinPayload<T>],
    tiles: &[Tile],
) -> Result<(), VerifyError> {
    if dispatch.len() != payloads.len() {
        return Err(VerifyError::PackedPayloadInvalid {
            bin_id: 0,
            kernel: KernelId::Serial,
            detail: format!(
                "payload table has {} entries for {} dispatch entries",
                payloads.len(),
                dispatch.len()
            ),
        });
    }
    for (d, p) in dispatch.iter().zip(payloads) {
        match (d.format, p) {
            (BinFormat::Csr, BinPayload::Csr) => {}
            (BinFormat::PackedSell { chunk, index }, BinPayload::Packed(packed)) => {
                if packed.chunk() != chunk {
                    return Err(VerifyError::PackedPayloadInvalid {
                        bin_id: d.bin_id,
                        kernel: d.kernel,
                        detail: format!(
                            "recorded chunk {chunk} != payload chunk {}",
                            packed.chunk()
                        ),
                    });
                }
                if packed.index_kind() != index {
                    return Err(VerifyError::PackedPayloadInvalid {
                        bin_id: d.bin_id,
                        kernel: d.kernel,
                        detail: format!(
                            "recorded index width {index} != payload width {}",
                            packed.index_kind()
                        ),
                    });
                }
                // check_against re-proves the compressed-index bounds:
                // every decoded `base + delta` equals the CSR column,
                // stays inside [0, n_cols), and each chunk base is the
                // tight minimum (so the span proof is reproducible).
                packed.check_against(a, &d.rows).map_err(|detail| {
                    VerifyError::PackedPayloadInvalid {
                        bin_id: d.bin_id,
                        kernel: d.kernel,
                        detail,
                    }
                })?;
            }
            (BinFormat::CacheBlockedCsr { strip_cols }, BinPayload::Blocked { strip_cols: ps }) => {
                if strip_cols != *ps {
                    return Err(VerifyError::BlockedPayloadInvalid {
                        bin_id: d.bin_id,
                        kernel: d.kernel,
                        detail: format!("recorded strip width {strip_cols} != payload width {ps}"),
                    });
                }
                if strip_cols == 0 {
                    return Err(VerifyError::BlockedPayloadInvalid {
                        bin_id: d.bin_id,
                        kernel: d.kernel,
                        detail: "strip width 0 would never advance".into(),
                    });
                }
                // The plan only chooses blocking for column-sorted rows
                // (the locality premise). Results do not depend on it —
                // the cursor walk consumes storage order — but a violated
                // premise means the plan was tampered with.
                for &r in &d.rows {
                    let (cols, _) = a.row(r as usize);
                    if let Some(w) = cols.windows(2).find(|w| w[0] >= w[1]) {
                        return Err(VerifyError::BlockedPayloadInvalid {
                            bin_id: d.bin_id,
                            kernel: d.kernel,
                            detail: format!("row {r} not column-sorted at {} >= {}", w[0], w[1]),
                        });
                    }
                }
            }
            // Re-derivation proofs for the structure-specialized tiers:
            // each payload's structural premise (the exact license its
            // unchecked-gather kernel executes under) is re-proven
            // against the CSR arrays, never trusted from pack time.
            (BinFormat::DenseRun, BinPayload::DenseRun(runs)) => {
                runs.check_against(a, &d.rows).map_err(|detail| {
                    VerifyError::SpecializedPayloadInvalid {
                        bin_id: d.bin_id,
                        kernel: d.kernel,
                        detail,
                    }
                })?;
            }
            (BinFormat::Banded { offsets }, BinPayload::Banded(band)) => {
                if band.offsets().len() != offsets {
                    return Err(VerifyError::SpecializedPayloadInvalid {
                        bin_id: d.bin_id,
                        kernel: d.kernel,
                        detail: format!(
                            "recorded {offsets} offsets != payload {}",
                            band.offsets().len()
                        ),
                    });
                }
                band.check_against(a, &d.rows).map_err(|detail| {
                    VerifyError::SpecializedPayloadInvalid {
                        bin_id: d.bin_id,
                        kernel: d.kernel,
                        detail,
                    }
                })?;
            }
            (BinFormat::RowRunReuse, BinPayload::RowRun(rr)) => {
                rr.check_against(a, &d.rows).map_err(|detail| {
                    VerifyError::SpecializedPayloadInvalid {
                        bin_id: d.bin_id,
                        kernel: d.kernel,
                        detail,
                    }
                })?;
            }
            (format, payload) => {
                let have = match payload {
                    BinPayload::Csr => "csr",
                    BinPayload::Packed(_) => "packed",
                    BinPayload::Blocked { .. } => "blocked",
                    BinPayload::DenseRun(_) => "dense-run",
                    BinPayload::Banded(_) => "banded",
                    BinPayload::RowRun(_) => "row-run",
                };
                return Err(VerifyError::PackedPayloadInvalid {
                    bin_id: d.bin_id,
                    kernel: d.kernel,
                    detail: format!("recorded format {format} but payload is {have}"),
                });
            }
        }
    }
    // The batched executor tiles the output as (row range × RHS block).
    // The row axis is covered by the dispatch/tile proofs; the column
    // axis is the deterministic RHS-block decomposition, proven here for
    // a sweep of batch widths. This runs for unfused plans too — the
    // batched path executes those through synthesized whole-bin tiles.
    check_rhs_blocks()?;
    if tiles.is_empty() {
        return Ok(()); // per-bin launch path: nothing fused to prove
    }
    // Per-bin tile-partition proof: collect each bin's ranges, sort, and
    // require exact coverage of that bin's work span.
    let mut per_bin: Vec<Vec<(usize, usize)>> = vec![Vec::new(); dispatch.len()];
    for t in tiles {
        if t.bin >= dispatch.len() {
            return Err(VerifyError::TilesNotPartition {
                bin_id: t.bin,
                detail: format!("tile bin index {} out of range", t.bin),
            });
        }
        per_bin[t.bin].push((t.start, t.end));
    }
    for (bi, (d, p)) in dispatch.iter().zip(payloads).enumerate() {
        let span = match p {
            BinPayload::Packed(packed) => packed.n_chunks(),
            // Blocked bins tile over row-list spans like CSR bins; all
            // strips of a row live inside its tile, so tile disjointness
            // covers the blocked partial-sum writes. The specialized
            // tiers also tile the row list (a row-run clipped by a tile
            // boundary reloads its pattern, never splits a row's sum).
            BinPayload::Csr
            | BinPayload::Blocked { .. }
            | BinPayload::DenseRun(_)
            | BinPayload::Banded(_)
            | BinPayload::RowRun(_) => d.rows.len(),
        };
        let ranges = &mut per_bin[bi];
        ranges.sort_unstable();
        let mut pos = 0usize;
        for &(s, e) in ranges.iter() {
            if s != pos || e <= s {
                return Err(VerifyError::TilesNotPartition {
                    bin_id: d.bin_id,
                    detail: format!("range {s}..{e} does not continue coverage at {pos}"),
                });
            }
            pos = e;
        }
        if pos != span {
            return Err(VerifyError::TilesNotPartition {
                bin_id: d.bin_id,
                detail: format!("tiles cover 0..{pos} of work span 0..{span}"),
            });
        }
    }
    Ok(())
}

/// Prove [`rhs_blocks`] partitions `[0, K)` for a sweep of batch widths
/// covering the degenerate (0, 1), exact-multiple (8, 16), and
/// every-remainder (2, 3, 5, 7, 9, 15, 33) cases: blocks must be
/// contiguous in order, each width must have a compiled kernel
/// (∈ {1, 2, 4, 8}), and the last block must end at `K`. The
/// decomposition is deterministic in `K` alone, so checking these widths
/// *is* checking the batched executor's column write sets.
///
/// [`rhs_blocks`]: crate::plan::rhs_blocks
pub fn check_rhs_blocks() -> Result<(), VerifyError> {
    for k in [0usize, 1, 2, 3, 4, 5, 7, 8, 9, 15, 16, 33, 64] {
        let fail = |detail: String| VerifyError::BatchBlocksNotPartition { k, detail };
        let mut pos = 0usize;
        for (start, width) in crate::plan::rhs_blocks(k) {
            if start != pos {
                return Err(fail(format!(
                    "block at {start} does not continue coverage at {pos}"
                )));
            }
            if !matches!(width, 1 | 2 | 4 | 8) {
                return Err(fail(format!("block width {width} has no compiled kernel")));
            }
            pos = start + width;
        }
        if pos != k {
            return Err(fail(format!("blocks cover 0..{pos} of 0..{k}")));
        }
    }
    Ok(())
}

/// Prove a plan's shard decomposition refines the tile queue soundly:
///
/// 1. the shard queues **partition** the tile ids `0..tiles.len()` —
///    every tile claimed by exactly one shard, no id out of range;
/// 2. each shard's recorded write set (`shard_rows`) is exactly, slot
///    for slot, the rows its queued tiles own (derived independently
///    from the dispatch/payload tables here) — the first-touch zeroing
///    pass writes precisely these rows, so they must be real;
/// 3. across shards the write sets are **disjoint** and in bounds —
///    with (1) and the tile proofs this means every output row is
///    first-touched by exactly one shard;
/// 4. each shard's `x` window `[lo, hi)` covers every column its rows
///    gather — the streamed working set really is the working set.
///
/// Together with [`check_dispatch`] + [`check_payloads`] this extends
/// the exactly-once write proof to the sharded executor without raising
/// its asymptotic cost: one O(m)-space ownership pass over rows, one
/// over tiles, and one O(nnz) column scan.
pub fn check_shards<T: Scalar>(
    a: &CsrMatrix<T>,
    dispatch: &[BinDispatch],
    payloads: &[BinPayload<T>],
    tiles: &[Tile],
    shards: &ShardedTiles,
) -> Result<(), VerifyError> {
    let m = a.n_rows();
    const UNOWNED: u32 = u32::MAX;
    // (1) tile partition.
    let mut tile_owner: Vec<u32> = vec![UNOWNED; tiles.len()];
    for (s, queue) in shards.queues().iter().enumerate() {
        let fail = |detail: String| VerifyError::ShardsNotPartition { shard: s, detail };
        for &t in queue {
            let ti = t as usize;
            if ti >= tiles.len() {
                return Err(fail(format!(
                    "tile id {t} out of range (|tiles| = {})",
                    tiles.len()
                )));
            }
            if tile_owner[ti] != UNOWNED {
                return Err(fail(format!(
                    "tile {t} already claimed by shard {}",
                    tile_owner[ti]
                )));
            }
            tile_owner[ti] = s as u32;
        }
    }
    if let Some(t) = tile_owner.iter().position(|&o| o == UNOWNED) {
        return Err(VerifyError::ShardsNotPartition {
            shard: shards.n_shards(),
            detail: format!("tile {t} claimed by no shard"),
        });
    }
    // (2) recorded write sets match the tiles; (3) disjoint + in bounds;
    // (4) x window covers the gathered columns.
    let mut row_owner: Vec<u32> = vec![UNOWNED; m];
    for (s, queue) in shards.queues().iter().enumerate() {
        let fail = |detail: String| VerifyError::ShardsNotPartition { shard: s, detail };
        let mut derived: Vec<u32> = Vec::new();
        for &t in queue {
            for_each_tile_row(dispatch, payloads, &tiles[t as usize], |r| derived.push(r));
        }
        let recorded = &shards.shard_rows()[s];
        if recorded != &derived {
            return Err(fail(format!(
                "recorded write set ({} rows) differs from the rows its {} tiles own ({} rows)",
                recorded.len(),
                queue.len(),
                derived.len()
            )));
        }
        let (lo, hi) = shards.x_ranges()[s];
        for &r in recorded {
            let ri = r as usize;
            if ri >= m {
                return Err(fail(format!("row {r} out of bounds (m = {m})")));
            }
            if row_owner[ri] != UNOWNED {
                return Err(fail(format!(
                    "row {r} already owned by shard {}",
                    row_owner[ri]
                )));
            }
            row_owner[ri] = s as u32;
            let (cols, _) = a.row(ri);
            for &c in cols {
                if c < lo || c >= hi {
                    return Err(fail(format!(
                        "row {r} gathers column {c} outside the x window {lo}..{hi}"
                    )));
                }
            }
        }
    }
    Ok(())
}

/// Prove a level-set solve schedule dependency-respecting against the
/// matrix it claims to solve — the core obligation behind
/// [`VerifiedSolvePlan`]'s unchecked path:
///
/// 1. the matrix is square (the solve reads and writes one vector);
/// 2. every row of the matrix appears in **exactly one** schedule slot
///    (no duplicates, no gaps, no out-of-range ids) — so `x[row]` is
///    written once, by one worker;
/// 3. every stored entry of every scheduled row is either the row's
///    own diagonal, or a same-direction dependency (strictly below the
///    diagonal for forward solves, strictly above for backward) whose
///    owning row is finalised **before** the reading row runs: in a
///    strictly earlier step for parallel steps, or at an earlier
///    position of the same serial chunk (same-worker program order);
///    columns outside the system are rejected outright — the kernel
///    would gather out of bounds;
/// 4. every scheduled row has a structural diagonal entry (the kernel
///    divides by it);
/// 5. every parallel step's cut positions partition its row list into
///    exactly `workers` spans (length `workers + 1`, first 0, last
///    `|rows|`, monotone) — the role-indexed spans the barrier-stepped
///    executor hands out are disjoint and complete.
///
/// Everything is re-derived from `a`'s structure; nothing the schedule
/// builder wrote down is trusted. O(m) space, O(m + nnz) time plus the
/// cut scans.
///
/// [`VerifiedSolvePlan`]: crate::solve::VerifiedSolvePlan
pub fn check_solve_schedule<T: Scalar>(
    a: &CsrMatrix<T>,
    direction: SolveDirection,
    steps: &[SolveStep],
    workers: usize,
) -> Result<(), VerifyError> {
    let m = a.n_rows();
    if a.n_cols() != m {
        return Err(VerifyError::SolveNotSquare {
            n_rows: m,
            n_cols: a.n_cols(),
        });
    }
    // (2) exactly-once scheduling, recording each row's (step, position)
    // so the dependency check can compare finalisation order.
    const UNSCHEDULED: u32 = u32::MAX;
    let mut step_of: Vec<u32> = vec![UNSCHEDULED; m];
    let mut pos_of: Vec<u32> = vec![0; m];
    for (s, st) in steps.iter().enumerate() {
        for (p, &r) in st.rows().iter().enumerate() {
            let ri = r as usize;
            if ri >= m {
                return Err(VerifyError::SolveRowOutOfBounds { row: r, m });
            }
            if step_of[ri] != UNSCHEDULED {
                return Err(VerifyError::SolveRowRepeated {
                    row: r,
                    first_step: step_of[ri] as usize,
                    step: s,
                });
            }
            step_of[ri] = s as u32;
            pos_of[ri] = p as u32;
        }
        // (5) parallel cuts partition the step's rows across the team.
        if let SolveStep::Parallel { rows, cuts } = st {
            let fail = |detail: String| VerifyError::SolveCutsInvalid { step: s, detail };
            if cuts.len() != workers + 1 {
                return Err(fail(format!(
                    "{} cuts for {workers} workers (need workers + 1)",
                    cuts.len()
                )));
            }
            if cuts.first() != Some(&0) {
                return Err(fail(format!("first cut {:?} != 0", cuts.first())));
            }
            if cuts.last() != Some(&rows.len()) {
                return Err(fail(format!(
                    "last cut {:?} != |rows| = {}",
                    cuts.last(),
                    rows.len()
                )));
            }
            if let Some(w) = cuts.windows(2).find(|w| w[0] > w[1]) {
                return Err(fail(format!("cuts not monotone at {} > {}", w[0], w[1])));
            }
        }
    }
    if let Some(row) = step_of.iter().position(|&s| s == UNSCHEDULED) {
        return Err(VerifyError::SolveRowUnscheduled { row });
    }
    // (3) + (4): per-row structure scan against the finalisation order.
    for (s, st) in steps.iter().enumerate() {
        let par = st.is_parallel();
        for (p, &r) in st.rows().iter().enumerate() {
            let i = r as usize;
            let (cols, _) = a.row(i);
            let mut has_diag = false;
            for &c in cols {
                let ci = c as usize;
                if ci >= m {
                    return Err(VerifyError::SolveColOutOfBounds {
                        row: i,
                        col: c,
                        n: m,
                    });
                }
                if ci == i {
                    has_diag = true;
                    continue;
                }
                if !direction.is_dependency(i, ci) {
                    return Err(VerifyError::SolveOffTriangle {
                        direction,
                        row: i,
                        col: c,
                    });
                }
                let cs = step_of[ci] as usize;
                let finalised = if par {
                    // Another worker may own the dependency: only a
                    // barrier (strictly earlier step) orders its write
                    // before this read.
                    cs < s
                } else {
                    // Serial chunks run on one worker in listed order:
                    // an earlier position of the same step suffices.
                    cs < s || (cs == s && (pos_of[ci] as usize) < p)
                };
                if !finalised {
                    return Err(VerifyError::SolveDependencyViolated {
                        row: i,
                        row_step: s,
                        col: ci,
                        col_step: cs,
                    });
                }
            }
            if !has_diag {
                return Err(VerifyError::SolveMissingDiagonal { row: i });
            }
        }
    }
    Ok(())
}

/// The inclusive row range two launches both claim. When the duplicate
/// comes from a single bin listing a row twice (`same_entry`), the range
/// is that one row.
fn overlap_range(rows_a: &[u32], rows_b: &[u32], same_entry: bool, hit: u32) -> (u32, u32) {
    if same_entry {
        return (hit, hit);
    }
    let set: std::collections::HashSet<u32> = rows_a.iter().copied().collect();
    let mut lo = hit;
    let mut hi = hit;
    for &r in rows_b {
        if set.contains(&r) {
            lo = lo.min(r);
            hi = hi.max(r);
        }
    }
    (lo, hi)
}

/// Prove the NNZ-balanced cut positions partition `d.rows` for every
/// partition count the native CPU backend could plausibly use: the cut
/// list must start at 0, end at `|rows|`, and be monotone — exactly the
/// properties that make the per-part spans `rows[cuts[p]..cuts[p+1]]`
/// disjoint and complete.
fn check_balanced_split<T: Scalar>(a: &CsrMatrix<T>, d: &BinDispatch) -> Result<(), VerifyError> {
    let n = d.rows.len();
    let candidates = [1, 2, 3, spmv_parallel::num_threads() * 4, n.max(1), n + 7];
    for &parts in &candidates {
        let cuts = rows_nnz_cuts(a, &d.rows, parts);
        let fail = |detail: String| VerifyError::SplitNotPartition {
            bin_id: d.bin_id,
            kernel: d.kernel,
            parts,
            detail,
        };
        if cuts.first() != Some(&0) {
            return Err(fail(format!("first cut {:?} != 0", cuts.first())));
        }
        if cuts.last() != Some(&n) {
            return Err(fail(format!("last cut {:?} != |rows| = {n}", cuts.last())));
        }
        if let Some(w) = cuts.windows(2).find(|w| w[0] > w[1]) {
            return Err(fail(format!("cuts not monotone at {} > {}", w[0], w[1])));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::binning::BinningScheme;
    use crate::exec::SimGpuBackend;
    use crate::plan::SpmvPlan;
    use crate::strategy::Strategy;
    use spmv_gpusim::GpuDevice;
    use spmv_sparse::gen;

    fn dispatch_of(a: &CsrMatrix<f64>, u: usize) -> Vec<BinDispatch> {
        let strategy = Strategy {
            binning: BinningScheme::Coarse { u },
            kernels: vec![KernelId::Subvector(8); 8],
        };
        let plan = SpmvPlan::compile(
            a,
            strategy,
            Box::new(SimGpuBackend::new(GpuDevice::kaveri())),
        );
        plan.dispatch().to_vec()
    }

    #[test]
    fn compiled_plans_pass() {
        let a = gen::powerlaw::<f64>(800, 1, 150, 2.1, 3);
        for u in [10, 100] {
            check_dispatch(&a, &dispatch_of(&a, u)).unwrap();
        }
    }

    #[test]
    fn out_of_bounds_row_is_named() {
        let a = gen::random_uniform::<f64>(50, 50, 1, 4, 1);
        let mut d = dispatch_of(&a, 10);
        d[0].rows.push(50);
        match check_dispatch(&a, &d) {
            Err(VerifyError::RowOutOfBounds { row: 50, m: 50, .. }) => {}
            other => panic!("expected RowOutOfBounds, got {other:?}"),
        }
    }

    #[test]
    fn duplicate_row_across_bins_reports_both_bins() {
        let a = gen::random_uniform::<f64>(60, 60, 1, 4, 2);
        let mut d = dispatch_of(&a, 10);
        assert!(d.len() >= 2, "need two bins for this test");
        let stolen = d[0].rows[0];
        let extra_nnz = a.row_nnz(stolen as usize);
        let last = d.len() - 1;
        d[last].rows.push(stolen);
        d[last].nnz += extra_nnz;
        match check_dispatch(&a, &d) {
            Err(VerifyError::OverlappingRows {
                bin_a, bin_b, rows, ..
            }) => {
                assert_ne!(bin_a, bin_b);
                assert!(rows.0 <= stolen && stolen <= rows.1);
            }
            other => panic!("expected OverlappingRows, got {other:?}"),
        }
    }

    #[test]
    fn missing_rows_report_the_uncovered_range() {
        let a = gen::random_uniform::<f64>(40, 40, 1, 3, 3);
        let mut d = dispatch_of(&a, 10);
        // Drop rows 5..=7 from whichever entry owns them.
        for e in &mut d {
            let before: Vec<u32> = e.rows.clone();
            e.rows.retain(|&r| !(5..=7).contains(&r));
            for &r in before.iter().filter(|&&r| (5..=7).contains(&r)) {
                e.nnz -= a.row_nnz(r as usize);
            }
        }
        match check_dispatch(&a, &d) {
            Err(VerifyError::UncoveredRows { rows: (5, 7) }) => {}
            other => panic!("expected UncoveredRows(5..=7), got {other:?}"),
        }
    }

    #[test]
    fn stale_nnz_is_caught() {
        let a = gen::random_uniform::<f64>(30, 30, 1, 3, 4);
        let mut d = dispatch_of(&a, 10);
        d[0].nnz += 1;
        match check_dispatch(&a, &d) {
            Err(VerifyError::BinNnzMismatch { .. }) => {}
            other => panic!("expected BinNnzMismatch, got {other:?}"),
        }
    }
}
