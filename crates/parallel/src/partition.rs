//! Range partitioning helpers shared by the scheduling layers.

/// A half-open index range assigned to one worker.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Chunk {
    /// First index (inclusive).
    pub start: usize,
    /// One past the last index.
    pub end: usize,
}

impl Chunk {
    /// Number of items in the chunk.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the chunk is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }
}

/// Split `[0, n)` into at most `parts` near-equal contiguous chunks
/// (the first `n % parts` chunks get one extra item). Returns fewer than
/// `parts` chunks when `n < parts`; never returns empty chunks.
pub fn chunk_ranges(n: usize, parts: usize) -> Vec<Chunk> {
    if n == 0 || parts == 0 {
        return Vec::new();
    }
    let parts = parts.min(n);
    let base = n / parts;
    let extra = n % parts;
    let mut out = Vec::with_capacity(parts);
    let mut start = 0;
    for i in 0..parts {
        let len = base + usize::from(i < extra);
        out.push(Chunk {
            start,
            end: start + len,
        });
        start += len;
    }
    debug_assert_eq!(start, n);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn covers_range_without_overlap() {
        for &(n, p) in &[(10usize, 3usize), (7, 7), (100, 8), (3, 10), (1, 1)] {
            let chunks = chunk_ranges(n, p);
            assert!(chunks.len() <= p);
            let mut cursor = 0;
            for c in &chunks {
                assert_eq!(c.start, cursor);
                assert!(!c.is_empty());
                cursor = c.end;
            }
            assert_eq!(cursor, n);
        }
    }

    #[test]
    fn balanced_within_one() {
        let chunks = chunk_ranges(100, 7);
        let min = chunks.iter().map(Chunk::len).min().unwrap();
        let max = chunks.iter().map(Chunk::len).max().unwrap();
        assert!(max - min <= 1);
    }

    #[test]
    fn degenerate_inputs() {
        assert!(chunk_ranges(0, 4).is_empty());
        assert!(chunk_ranges(4, 0).is_empty());
    }
}
