//! Criterion bench for the verified-plan fast path: `execute` (per-call
//! O(m) fingerprint scan) versus `execute_unchecked` (O(1) shape check,
//! justified by the one-time write-set proof of `SpmvPlan::verify`).
//!
//! Matrices come from the paper's evaluation suite (the Figure 5/6
//! inputs); both paths run on the native CPU backend so the measured
//! difference is exactly the validation cost the proof removes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use spmv_autotune::prelude::*;
use spmv_sparse::suite;

const MATRICES: [&str; 2] = ["cryg10000", "whitaker3_dual"];

fn auto() -> AutoSpmv {
    AutoSpmv::with_tuner(Tuner::with_config(
        GpuDevice::kaveri(),
        TunerConfig {
            granularities: vec![100, 1_000],
            kernels: ALL_KERNELS.to_vec(),
            include_single_bin: false,
        },
    ))
}

fn bench_verified_exec(c: &mut Criterion) {
    let auto = auto();
    let mut group = c.benchmark_group("verified_exec");
    group.sample_size(10);
    for name in MATRICES {
        let a = suite::by_name(name)
            .unwrap_or_else(|| panic!("{name} not in suite"))
            .generate();
        let v: Vec<f32> = (0..a.n_cols()).map(|i| (i % 9) as f32).collect();

        let checked = auto.plan_native(&a);
        group.bench_with_input(BenchmarkId::new("execute", name), &a, |b, a| {
            let mut u = vec![0.0f32; a.n_rows()];
            b.iter(|| checked.execute(a, &v, &mut u).unwrap())
        });

        let verified = auto
            .plan_native(&a)
            .verify(&a)
            .expect("compiled plan must verify");
        group.bench_with_input(BenchmarkId::new("execute_unchecked", name), &a, |b, a| {
            let mut u = vec![0.0f32; a.n_rows()];
            b.iter(|| verified.execute_unchecked(a, &v, &mut u).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_verified_exec);
criterion_main!(benches);
