//! Offline stand-in for the `criterion` crate (0.5 API subset).
//!
//! The registry is unreachable in this environment, so this vendored
//! crate keeps the workspace's benches compiling and runnable with the
//! same source: [`criterion_group!`] / [`criterion_main!`],
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_function`] /
//! [`BenchmarkGroup::bench_with_input`], [`BenchmarkId`], and
//! [`Bencher::iter`]. Measurement is deliberately simple — warm up, then
//! time `sample_size` batches and report min/mean/max of the per-call
//! wall time — which is enough for the repo's comparative benches (the
//! acceptance criteria compare ratios, not absolute nanoseconds).

#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer identity, re-exported like criterion's.
#[inline]
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Throughput hint for a benchmark group: reported as elements (or
/// bytes) per second next to the wall time, like upstream criterion.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// The routine processes this many logical elements per call.
    Elements(u64),
    /// The routine processes this many bytes per call.
    Bytes(u64),
}

/// Top-level bench context; one per `criterion_group!` function.
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            default_sample_size: 20,
        }
    }
}

impl Criterion {
    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.default_sample_size,
            throughput: None,
            _parent: self,
        }
    }

    /// Run one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(name, self.default_sample_size, None, f);
        self
    }
}

/// A named set of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Report per-second throughput alongside wall time for every
    /// benchmark in this group.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Benchmark a closure under `id` within this group.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into_benchmark_id().0);
        run_benchmark(&label, self.sample_size, self.throughput, &mut f);
        self
    }

    /// Benchmark a closure that receives `input` by reference.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.into_benchmark_id().0);
        run_benchmark(&label, self.sample_size, self.throughput, |b| f(b, input));
        self
    }

    /// End the group (kept for API compatibility; drop does the same).
    pub fn finish(self) {}
}

/// Identifier of one benchmark within a group.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl Display, parameter: impl Display) -> Self {
        Self(format!("{name}/{parameter}"))
    }

    /// Just the parameter as the id.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self(parameter.to_string())
    }
}

/// Conversion into [`BenchmarkId`] so `bench_function` accepts both
/// string labels and explicit ids, like upstream.
pub trait IntoBenchmarkId {
    /// Convert.
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId(self.to_string())
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId(self)
    }
}

/// Passed to the bench closure; [`Bencher::iter`] does the timing.
pub struct Bencher {
    iters_per_sample: u64,
    sample_size: usize,
    samples: Vec<Duration>,
    target_sample_time: Duration,
}

impl Bencher {
    fn new(sample_size: usize) -> Self {
        Self {
            iters_per_sample: 1,
            sample_size: sample_size.max(2),
            samples: Vec::with_capacity(sample_size),
            target_sample_time: Duration::from_millis(25),
        }
    }

    /// Time `routine`, collecting the configured number of samples.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up: find an iteration count that makes one sample take
        // roughly `target_sample_time`, so cheap routines aren't timed at
        // clock resolution.
        let mut iters: u64 = 1;
        loop {
            let t0 = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            let elapsed = t0.elapsed();
            if elapsed >= self.target_sample_time || iters >= 1 << 20 {
                self.iters_per_sample = iters;
                break;
            }
            let grow = if elapsed.is_zero() {
                8
            } else {
                (self.target_sample_time.as_nanos() / elapsed.as_nanos().max(1)).clamp(2, 8) as u64
            };
            iters = iters.saturating_mul(grow);
        }
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            for _ in 0..self.iters_per_sample {
                black_box(routine());
            }
            self.samples
                .push(t0.elapsed() / self.iters_per_sample as u32);
        }
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(
    label: &str,
    sample_size: usize,
    throughput: Option<Throughput>,
    mut f: F,
) {
    let mut b = Bencher::new(sample_size);
    f(&mut b);
    if b.samples.is_empty() {
        println!("{label:<44} (no samples — closure never called iter)");
        return;
    }
    let min = b.samples.iter().min().unwrap();
    let max = b.samples.iter().max().unwrap();
    let mean = b.samples.iter().sum::<Duration>() / b.samples.len() as u32;
    let thrpt = match throughput {
        Some(Throughput::Elements(n)) => {
            format!("  thrpt: {}", fmt_rate(n, mean, "elem/s"))
        }
        Some(Throughput::Bytes(n)) => format!("  thrpt: {}", fmt_rate(n, mean, "B/s")),
        None => String::new(),
    };
    println!(
        "{label:<44} time: [{} {} {}]{thrpt}  ({} samples × {} iters)",
        fmt_duration(*min),
        fmt_duration(mean),
        fmt_duration(*max),
        b.samples.len(),
        b.iters_per_sample,
    );
}

fn fmt_rate(per_call: u64, mean: Duration, unit: &str) -> String {
    let secs = mean.as_secs_f64();
    if secs <= 0.0 {
        return format!("∞ {unit}");
    }
    let rate = per_call as f64 / secs;
    if rate >= 1e9 {
        format!("{:.3} G{unit}", rate / 1e9)
    } else if rate >= 1e6 {
        format!("{:.3} M{unit}", rate / 1e6)
    } else if rate >= 1e3 {
        format!("{:.3} K{unit}", rate / 1e3)
    } else {
        format!("{rate:.1} {unit}")
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.3} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else {
        format!("{:.3} s", ns as f64 / 1e9)
    }
}

/// Define a bench group function from bench-definition functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Define `main` from bench group functions.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_collects_samples() {
        let mut b = Bencher::new(5);
        let mut counter = 0u64;
        b.iter(|| {
            counter = counter.wrapping_add(1);
            black_box(counter)
        });
        assert!(b.samples.len() >= 2);
        assert!(b.iters_per_sample >= 1);
    }

    #[test]
    fn group_api_compiles_and_runs() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(2);
        group.bench_function("plain", |b| b.iter(|| black_box(1 + 1)));
        group.bench_with_input(BenchmarkId::new("with", 7), &7u32, |b, &x| {
            b.iter(|| black_box(x * 2))
        });
        group.bench_with_input(BenchmarkId::from_parameter(9), &9u32, |b, &x| {
            b.iter(|| black_box(x + 2))
        });
        group.finish();
        c.bench_function("standalone", |b| b.iter(|| black_box(3)));
    }
}
