//! AdaBoost.M1 boosting over decision trees — C5.0's flagship addition to
//! C4.5 (`-b`/`-t` trials). Optional for the paper's pipeline but exposed
//! for the accuracy ablation.

use crate::dataset::Dataset;
use crate::tree::{DecisionTree, TreeConfig};

/// An AdaBoost.M1 ensemble of decision trees.
pub struct BoostedTrees {
    trees: Vec<(DecisionTree, f64)>,
    n_classes: usize,
}

impl BoostedTrees {
    /// Fit up to `trials` boosted trees. Boosting stops early when a
    /// round's weighted error hits 0 (perfect) or ≥ 0.5 (no better than
    /// chance), per the AdaBoost.M1 rules.
    pub fn fit(data: &Dataset, config: &TreeConfig, trials: usize) -> Self {
        assert!(trials >= 1);
        let n = data.len();
        let mut working = data.clone();
        working.set_weights(vec![1.0; n]);
        let mut trees = Vec::new();
        for _ in 0..trials {
            let tree = DecisionTree::fit(&working, config);
            // Weighted error of this round.
            let total: f64 = working.total_weight();
            let mut err = 0.0;
            let mut wrong = vec![false; n];
            for (i, w) in wrong.iter_mut().enumerate() {
                if tree.predict(working.row(i)) != working.label(i) {
                    err += working.weight(i);
                    *w = true;
                }
            }
            let err = err / total;
            if err >= 0.5 {
                if trees.is_empty() {
                    trees.push((tree, 1.0));
                }
                break;
            }
            let beta = (err / (1.0 - err)).max(1e-10);
            let alpha = (1.0 / beta).ln();
            trees.push((tree, alpha));
            if err <= 1e-12 {
                break;
            }
            // Reweight: correct examples shrink by beta, then renormalise
            // to total weight n (keeps weights well scaled).
            let mut weights: Vec<f64> = (0..n)
                .map(|i| {
                    let w = working.weight(i);
                    if wrong[i] {
                        w
                    } else {
                        w * beta
                    }
                })
                .collect();
            let s: f64 = weights.iter().sum();
            let scale = n as f64 / s;
            for w in &mut weights {
                *w = (*w * scale).max(1e-8);
            }
            working.set_weights(weights);
        }
        Self {
            trees,
            n_classes: data.n_classes(),
        }
    }

    /// Predict by weighted vote.
    pub fn predict(&self, row: &[f64]) -> usize {
        let mut votes = vec![0.0f64; self.n_classes];
        for (tree, alpha) in &self.trees {
            votes[tree.predict(row)] += alpha;
        }
        votes
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap().then(b.0.cmp(&a.0)))
            .map(|(c, _)| c)
            .unwrap_or(0)
    }

    /// Number of trees actually kept.
    pub fn n_trees(&self) -> usize {
        self.trees.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::AttrSpec;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn noisy_threshold(seed: u64, n: usize, noise: f64) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut d = Dataset::new(
            vec![AttrSpec::numeric("x"), AttrSpec::numeric("y")],
            vec!["a".into(), "b".into()],
        );
        for _ in 0..n {
            let x: f64 = rng.gen_range(0.0..1.0);
            let y: f64 = rng.gen_range(0.0..1.0);
            let mut label = usize::from(x + y > 1.0);
            if rng.gen_bool(noise) {
                label = 1 - label;
            }
            d.push(&[x, y], label);
        }
        d
    }

    fn error_of(pred: impl Fn(&[f64]) -> usize, d: &Dataset) -> f64 {
        let wrong = (0..d.len())
            .filter(|&i| pred(d.row(i)) != d.label(i))
            .count();
        wrong as f64 / d.len() as f64
    }

    #[test]
    fn boosting_beats_a_stump_on_diagonal_boundary() {
        let train = noisy_threshold(1, 600, 0.0);
        let test = noisy_threshold(2, 300, 0.0);
        let stump_cfg = TreeConfig {
            max_depth: 2,
            prune: false,
            ..Default::default()
        };
        let stump = DecisionTree::fit(&train, &stump_cfg);
        let boosted = BoostedTrees::fit(&train, &stump_cfg, 25);
        let e_stump = error_of(|r| stump.predict(r), &test);
        let e_boost = error_of(|r| boosted.predict(r), &test);
        assert!(boosted.n_trees() > 3);
        assert!(
            e_boost < e_stump,
            "boosted {e_boost} !< stump {e_stump} ({} trees)",
            boosted.n_trees()
        );
    }

    #[test]
    fn perfect_first_round_stops_early() {
        let mut d = Dataset::new(vec![AttrSpec::numeric("x")], vec!["a".into(), "b".into()]);
        for i in 0..50 {
            d.push(&[i as f64], usize::from(i >= 25));
        }
        let b = BoostedTrees::fit(&d, &TreeConfig::default(), 10);
        assert_eq!(b.n_trees(), 1);
        assert_eq!(b.predict(&[0.0]), 0);
        assert_eq!(b.predict(&[49.0]), 1);
    }

    #[test]
    fn single_trial_equals_plain_tree() {
        let d = noisy_threshold(3, 200, 0.05);
        let cfg = TreeConfig::default();
        let t = DecisionTree::fit(&d, &cfg);
        let b = BoostedTrees::fit(&d, &cfg, 1);
        for i in 0..d.len() {
            assert_eq!(t.predict(d.row(i)), b.predict(d.row(i)));
        }
    }
}
