//! Property tests of the cost model's axioms: coalescing bounds, pricing
//! monotonicity, and accumulation arithmetic. Randomised inputs come
//! from a seeded generator for reproducibility.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use spmv_gpusim::coalesce::{transactions, transactions_contiguous};
use spmv_gpusim::engine::price_workgroups;
use spmv_gpusim::trace::{WaveCost, WorkgroupCost};
use spmv_gpusim::GpuDevice;

const CASES: usize = 128;

fn wg(waves: Vec<WaveCost>, lds: usize) -> WorkgroupCost {
    WorkgroupCost {
        waves,
        lds_bytes: lds,
    }
}

fn random_addrs(rng: &mut StdRng, max_addr: u64) -> Vec<u64> {
    let lanes = rng.gen_range(1usize..64);
    (0..lanes).map(|_| rng.gen_range(0..max_addr)).collect()
}

/// 1 ≤ transactions ≤ lanes for any non-empty address set.
#[test]
fn transaction_count_bounds() {
    let mut rng = StdRng::seed_from_u64(0x6501);
    let mut scratch = Vec::new();
    for _ in 0..CASES {
        let addrs = random_addrs(&mut rng, 1_000_000);
        let tx = transactions(&addrs, 64, &mut scratch);
        assert!(tx >= 1);
        assert!(tx <= addrs.len());
    }
}

/// Coalescing is permutation-invariant.
#[test]
fn transactions_ignore_lane_order() {
    let mut rng = StdRng::seed_from_u64(0x6502);
    let mut scratch = Vec::new();
    for _ in 0..CASES {
        let mut addrs = random_addrs(&mut rng, 100_000);
        let a = transactions(&addrs, 64, &mut scratch);
        addrs.reverse();
        let b = transactions(&addrs, 64, &mut scratch);
        assert_eq!(a, b);
    }
}

/// The contiguous closed form always matches the general path.
#[test]
fn contiguous_closed_form() {
    let mut rng = StdRng::seed_from_u64(0x6503);
    let mut scratch = Vec::new();
    for _ in 0..CASES {
        let base = rng.gen_range(0u64..10_000);
        let lanes = rng.gen_range(0usize..128);
        let eb = if rng.gen_bool(0.5) { 4usize } else { 8usize };
        let addrs: Vec<u64> = (0..lanes as u64).map(|i| base + i * eb as u64).collect();
        assert_eq!(
            transactions_contiguous(base, lanes, eb, 64),
            transactions(&addrs, 64, &mut scratch)
        );
    }
}

/// Pricing is monotone in every wave cost component.
#[test]
fn pricing_is_monotone() {
    let mut rng = StdRng::seed_from_u64(0x6504);
    let d = GpuDevice::kaveri();
    for _ in 0..CASES {
        let alu = rng.gen_range(0u64..10_000);
        let tx = rng.gen_range(0u64..10_000);
        let rounds = rng.gen_range(0u64..1_000);
        let lds = rng.gen_range(0u64..10_000);
        let barriers = rng.gen_range(0u64..100);
        let base = WaveCost {
            alu,
            transactions: tx,
            mem_rounds: rounds,
            lds_ops: lds,
            barriers,
            ..Default::default()
        };
        let cost = |w: WaveCost| price_workgroups(&d, &[wg(vec![w], 0)]).cycles;
        let c0 = cost(base);
        for bumped in [
            WaveCost {
                alu: alu + 1,
                ..base
            },
            WaveCost {
                transactions: tx + 1,
                ..base
            },
            WaveCost {
                mem_rounds: rounds + 1,
                ..base
            },
            WaveCost {
                lds_ops: lds + 1,
                ..base
            },
            WaveCost {
                barriers: barriers + 1,
                ..base
            },
        ] {
            assert!(cost(bumped) >= c0);
        }
    }
}

/// Adding a work-group never reduces the launch cost.
#[test]
fn more_workgroups_never_cost_less() {
    let mut rng = StdRng::seed_from_u64(0x6505);
    let d = GpuDevice::kaveri();
    for _ in 0..CASES {
        let n = rng.gen_range(1usize..40);
        let alu = rng.gen_range(1u64..10_000);
        let unit = wg(
            vec![
                WaveCost {
                    alu,
                    ..Default::default()
                };
                4
            ],
            256,
        );
        let small = price_workgroups(&d, &vec![unit.clone(); n]).cycles;
        let big = price_workgroups(&d, &vec![unit; n + 1]).cycles;
        assert!(big + 1e-9 >= small);
    }
}

/// Accumulating launch stats adds cycles and counters exactly.
#[test]
fn accumulate_is_additive() {
    let mut rng = StdRng::seed_from_u64(0x6506);
    let d = GpuDevice::kaveri();
    for _ in 0..CASES {
        let a_alu = rng.gen_range(0u64..1_000);
        let b_alu = rng.gen_range(0u64..1_000);
        let s1 = price_workgroups(
            &d,
            &[wg(
                vec![WaveCost {
                    alu: a_alu,
                    ..Default::default()
                }],
                0,
            )],
        );
        let s2 = price_workgroups(
            &d,
            &[wg(
                vec![WaveCost {
                    alu: b_alu,
                    ..Default::default()
                }],
                0,
            )],
        );
        let mut sum = s1.clone();
        sum.accumulate(&s2);
        assert!((sum.cycles - (s1.cycles + s2.cycles)).abs() < 1e-9);
        assert_eq!(sum.alu, s1.alu + s2.alu);
        assert_eq!(sum.workgroups, 2);
    }
}

/// Seconds and cycles stay consistent with the device clock.
#[test]
fn seconds_track_cycles() {
    let mut rng = StdRng::seed_from_u64(0x6507);
    let d = GpuDevice::kaveri();
    for _ in 0..CASES {
        let alu = rng.gen_range(0u64..100_000);
        let s = price_workgroups(
            &d,
            &[wg(
                vec![WaveCost {
                    alu,
                    ..Default::default()
                }],
                0,
            )],
        );
        assert!((s.seconds - d.cycles_to_seconds(s.cycles)).abs() < 1e-15);
    }
}
