//! Banded and stencil matrices: materials/2D-3D mesh problems
//! (`cryg10000`, `whitaker3_dual` in Table II) concentrate their
//! non-zeros near the diagonal with very regular, short rows.

use super::{gen_value, seeded_rng, RowsBuilder};
use crate::csr::CsrMatrix;
use crate::scalar::Scalar;

/// An `n × n` banded matrix with the given half-bandwidth: row `i` holds
/// non-zeros in columns `[i - hb, i + hb]` clipped to the matrix.
pub fn banded<T: Scalar>(n: usize, half_bandwidth: usize, seed: u64) -> CsrMatrix<T> {
    let mut rng = seeded_rng(seed);
    let mut b = RowsBuilder::with_capacity(n, n, n * (2 * half_bandwidth + 1));
    let mut cols = Vec::new();
    let mut vals = Vec::new();
    for i in 0..n {
        cols.clear();
        vals.clear();
        let lo = i.saturating_sub(half_bandwidth);
        let hi = (i + half_bandwidth).min(n - 1);
        for c in lo..=hi {
            cols.push(c as u32);
            vals.push(gen_value::<T>(&mut rng));
        }
        b.push_row_sorted(&cols, &vals);
    }
    b.finish()
}

/// The 1-D Poisson stencil `tridiag(-1, 2, -1)` of size `n` — the
/// canonical symmetric positive-definite test matrix for the CG example.
pub fn laplacian_1d<T: Scalar>(n: usize) -> CsrMatrix<T> {
    let mut b = RowsBuilder::with_capacity(n, n, 3 * n);
    let (one, two) = (T::ONE, T::from_f64(2.0));
    let neg = T::ZERO - one;
    let mut cols = Vec::new();
    let mut vals = Vec::new();
    for i in 0..n {
        cols.clear();
        vals.clear();
        if i > 0 {
            cols.push((i - 1) as u32);
            vals.push(neg);
        }
        cols.push(i as u32);
        vals.push(two);
        if i + 1 < n {
            cols.push((i + 1) as u32);
            vals.push(neg);
        }
        b.push_row_sorted(&cols, &vals);
    }
    b.finish()
}

/// The 5-point 2-D Poisson stencil on a `gx × gy` grid (size
/// `gx·gy × gx·gy`), symmetric positive definite. This is the structure of
/// `apache1`-style structural problems and the CG example's default
/// operator.
pub fn laplacian_2d<T: Scalar>(gx: usize, gy: usize) -> CsrMatrix<T> {
    let n = gx * gy;
    let mut b = RowsBuilder::with_capacity(n, n, 5 * n);
    let four = T::from_f64(4.0);
    let neg = T::ZERO - T::ONE;
    let mut cols = Vec::new();
    let mut vals = Vec::new();
    for y in 0..gy {
        for x in 0..gx {
            let i = y * gx + x;
            cols.clear();
            vals.clear();
            if y > 0 {
                cols.push((i - gx) as u32);
                vals.push(neg);
            }
            if x > 0 {
                cols.push((i - 1) as u32);
                vals.push(neg);
            }
            cols.push(i as u32);
            vals.push(four);
            if x + 1 < gx {
                cols.push((i + 1) as u32);
                vals.push(neg);
            }
            if y + 1 < gy {
                cols.push((i + gx) as u32);
                vals.push(neg);
            }
            b.push_row_sorted(&cols, &vals);
        }
    }
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn banded_row_widths() {
        let a = banded::<f64>(10, 2, 1);
        assert_eq!(a.row_nnz(0), 3); // cols 0..=2
        assert_eq!(a.row_nnz(5), 5); // cols 3..=7
        assert_eq!(a.row_nnz(9), 3); // cols 7..=9
        assert!(a.rows_sorted());
    }

    #[test]
    fn laplacian_1d_structure() {
        let a = laplacian_1d::<f64>(5);
        assert_eq!(a.nnz(), 3 * 5 - 2);
        let (cols, vals) = a.row(2);
        assert_eq!(cols, &[1, 2, 3]);
        assert_eq!(vals, &[-1.0, 2.0, -1.0]);
    }

    #[test]
    fn laplacian_1d_is_symmetric() {
        let a = laplacian_1d::<f64>(8);
        assert_eq!(a, a.transpose());
    }

    #[test]
    fn laplacian_2d_structure() {
        let a = laplacian_2d::<f64>(3, 3);
        assert_eq!(a.n_rows(), 9);
        // Corner has 3 entries, edge 4, interior 5.
        assert_eq!(a.row_nnz(0), 3);
        assert_eq!(a.row_nnz(1), 4);
        assert_eq!(a.row_nnz(4), 5);
        assert_eq!(a, a.transpose());
    }

    #[test]
    fn laplacian_2d_row_sums_nonneg() {
        // Diagonally dominant: row sums are >= 0 (0 in the interior).
        let a = laplacian_2d::<f64>(4, 4);
        for i in 0..a.n_rows() {
            let (_, vals) = a.row(i);
            let s: f64 = vals.iter().sum();
            assert!(s >= 0.0);
        }
    }
}
