//! Level-scheduled sparse triangular solves (SpTRSV) and the symmetric
//! Gauss-Seidel sweep (SymGS) behind the same plan/verify split as
//! SpMV.
//!
//! A triangular solve carries row-to-row dependencies, so its parallel
//! schedule is a *claim* that needs proving, exactly like an SpMV
//! plan's write sets. The pipeline mirrors `SpmvPlan → VerifiedPlan`:
//!
//! 1. [`SolvePlan::build`] turns a triangular matrix into a barrier-
//!    stepped schedule: the level sets of the dependency DAG, with runs
//!    of tiny levels merged into barrier-free serial chunks (the
//!    auto-tuned granularity knob, [`SolveConfig::min_parallel_rows`])
//!    and wide levels split across workers by NNZ-balanced cuts.
//! 2. [`SolvePlan::verify`] hands the schedule to the dependency-order
//!    prover ([`check_solve_schedule`]), which re-derives from the
//!    structure alone that every row is scheduled exactly once, reads
//!    only rows finalised before it, and owns a structural diagonal.
//!    Success mints a [`VerifiedSolvePlan`] — unforgeable outside this
//!    module — whose [`solve_unchecked`](VerifiedSolvePlan::solve_unchecked)
//!    drops the per-call O(m) fingerprint scan to O(1) validation.
//! 3. [`SymgsPlan`] composes one forward and one backward verified
//!    solve with two verified residual SpMV plans into the SymGS sweep,
//!    bit-for-bit identical to [`spmv_sparse::solve::symgs_seq`].
//!
//! ## Why the plan snapshots its structure
//!
//! The SpMV kernels read the caller's matrix each call, and their proof
//! survives that because a wrong matrix only changes *values* read
//! through bounds-checked slices. A solve kernel is sharper: dependency
//! order is a property of the *column indices*, and the pattern
//! fingerprint does not hash those. So the plan copies `row_ptr` and
//! `col_idx` at build time and the kernels walk the snapshot, taking
//! only values from the caller's matrix. Memory safety therefore never
//! depends on what the caller passes — a mismatched matrix yields wrong
//! numbers, never a data race — and `solve_unchecked` stays a safe fn.

use crate::kernels::cpu::rows_nnz_cuts;
use crate::kernels::solve::{solve_rows, XVec};
use crate::kernels::KernelId;
use crate::plan::{PatternFingerprint, PlanError, SpmvPlan, VerifiedPlan};
use crate::strategy::Strategy;
use crate::verify::{check_solve_schedule, VerifyError};
use spmv_parallel::{num_threads, stepped_for_each};
use spmv_sparse::solve::{level_sets, split_triangular, SolveDirection, TriangularHalves};
use spmv_sparse::{CsrMatrix, Scalar, SolveBuildError};
use std::marker::PhantomData;

/// Tuning knobs for building a [`SolvePlan`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SolveConfig {
    /// Worker-team size. `0` (the default) resolves to
    /// [`spmv_parallel::num_threads`]. `1` builds an all-serial plan
    /// with zero barriers.
    pub workers: usize,
    /// Levels with fewer rows than this are merged with their
    /// neighbours into one serial, barrier-free chunk — below this
    /// width a barrier costs more than the exposed parallelism buys.
    /// `0` (the default) resolves to `4 * workers`. `usize::MAX`
    /// serialises everything; `1` keeps every level parallel.
    pub min_parallel_rows: usize,
}

impl SolveConfig {
    /// Resolve the `0 = auto` sentinels to concrete values.
    fn resolve(self) -> (usize, usize) {
        let workers = if self.workers == 0 {
            num_threads()
        } else {
            self.workers
        };
        let min_parallel = if self.min_parallel_rows == 0 {
            4 * workers
        } else {
            self.min_parallel_rows
        };
        (workers.max(1), min_parallel)
    }
}

/// One barrier-separated step of a solve schedule.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SolveStep {
    /// Rows executed in listed order by one worker (a merged run of
    /// tiny levels). Later rows of the chunk may depend on earlier
    /// ones — same-worker program order needs no barrier.
    Serial {
        /// Rows of the chunk, in dependency-respecting order.
        rows: Vec<u32>,
    },
    /// One level, split across the worker team: worker `r` executes
    /// `rows[cuts[r]..cuts[r + 1]]`. Rows of a level are mutually
    /// independent, so any split is race-free once proven a partition.
    Parallel {
        /// The level's rows.
        rows: Vec<u32>,
        /// NNZ-balanced cut positions into `rows`, length `workers + 1`.
        cuts: Vec<usize>,
    },
}

impl SolveStep {
    /// The rows this step executes, in order.
    pub fn rows(&self) -> &[u32] {
        match self {
            SolveStep::Serial { rows } | SolveStep::Parallel { rows, .. } => rows,
        }
    }

    /// Does the whole worker team participate in this step?
    pub fn is_parallel(&self) -> bool {
        matches!(self, SolveStep::Parallel { .. })
    }
}

/// A compiled level-set schedule for one triangular solve, bound to the
/// sparsity pattern it was built from. Build once per structure with
/// [`SolvePlan::build`], then [`solve`](SolvePlan::solve) repeatedly as
/// values change — or promote to a [`VerifiedSolvePlan`] via
/// [`verify`](SolvePlan::verify) to drop the per-call pattern scan.
pub struct SolvePlan<T: Scalar> {
    direction: SolveDirection,
    fingerprint: PatternFingerprint,
    /// Structure snapshot: the kernels never read structure from the
    /// caller's matrix (see the module docs).
    row_ptr: Vec<usize>,
    col_idx: Vec<u32>,
    steps: Vec<SolveStep>,
    /// `steps[s].is_parallel()`, precomputed for `stepped_for_each`.
    parallel_flags: Vec<bool>,
    n_levels: usize,
    workers: usize,
    config: SolveConfig,
    _values: PhantomData<T>,
}

impl<T: Scalar> SolvePlan<T> {
    /// Build a schedule for `a` with the default [`SolveConfig`].
    /// Rejects non-square, non-triangular, or diagonal-deficient
    /// matrices with a typed [`SolveBuildError`].
    pub fn build(a: &CsrMatrix<T>, direction: SolveDirection) -> Result<Self, SolveBuildError> {
        Self::build_with(a, direction, SolveConfig::default())
    }

    /// [`build`](Self::build) with explicit tuning knobs.
    pub fn build_with(
        a: &CsrMatrix<T>,
        direction: SolveDirection,
        config: SolveConfig,
    ) -> Result<Self, SolveBuildError> {
        let levels = level_sets(a, direction)?;
        let n_levels = levels.len();
        let (workers, min_parallel) = config.resolve();
        let mut steps: Vec<SolveStep> = Vec::new();
        let mut pending: Vec<u32> = Vec::new();
        if workers == 1 {
            // One worker: a single serial chunk in level order, zero
            // barriers — the deterministic reference schedule.
            pending = levels.into_iter().flatten().collect();
        } else {
            for rows in levels {
                if rows.len() >= min_parallel {
                    if !pending.is_empty() {
                        steps.push(SolveStep::Serial {
                            rows: std::mem::take(&mut pending),
                        });
                    }
                    let cuts = rows_nnz_cuts(a, &rows, workers);
                    steps.push(SolveStep::Parallel { rows, cuts });
                } else {
                    pending.extend(rows);
                }
            }
        }
        if !pending.is_empty() {
            steps.push(SolveStep::Serial { rows: pending });
        }
        let parallel_flags = steps.iter().map(SolveStep::is_parallel).collect();
        Ok(Self {
            direction,
            fingerprint: PatternFingerprint::of(a),
            row_ptr: a.row_ptr().to_vec(),
            col_idx: a.col_idx().to_vec(),
            steps,
            parallel_flags,
            n_levels,
            workers,
            config,
            _values: PhantomData,
        })
    }

    /// Execute the solve with the full per-call pattern guard: `a` must
    /// fingerprint-match the build matrix (O(m) scan), and `b`/`x` must
    /// have the system's length. Values are read from `a`, structure
    /// from the plan's snapshot.
    pub fn solve(&self, a: &CsrMatrix<T>, b: &[T], x: &mut [T]) -> Result<(), PlanError> {
        let got = PatternFingerprint::of(a);
        if got != self.fingerprint {
            return Err(PlanError::PatternMismatch {
                expected: self.fingerprint,
                got,
            });
        }
        self.check_dims(b, x)?;
        self.run(a.values(), b, x);
        Ok(())
    }

    /// Promote this plan to a [`VerifiedSolvePlan`] by running the
    /// dependency-order prover against `a`:
    ///
    /// 1. `a` must fingerprint-match the build matrix **and** agree
    ///    with the structure snapshot entry-for-entry (the fingerprint
    ///    does not hash column indices; the proof must be about the
    ///    matrix the caller will solve with);
    /// 2. [`check_solve_schedule`] then proves, from the structure
    ///    alone, that every row is scheduled exactly once, every
    ///    off-diagonal column is a same-direction dependency finalised
    ///    before the row runs (strictly earlier step for parallel
    ///    steps; earlier position suffices inside a serial chunk),
    ///    every row has a structural diagonal, and every parallel
    ///    step's cuts partition its rows across the worker team.
    ///
    /// The prover re-derives everything from the matrix; it trusts
    /// nothing the builder wrote down.
    pub fn verify(self, a: &CsrMatrix<T>) -> Result<VerifiedSolvePlan<T>, VerifyError> {
        let got = PatternFingerprint::of(a);
        if got != self.fingerprint {
            return Err(VerifyError::PatternMismatch {
                expected: self.fingerprint,
                got,
            });
        }
        if a.row_ptr() != &self.row_ptr[..] {
            return Err(VerifyError::SolveStructureMismatch { what: "row_ptr" });
        }
        if a.col_idx() != &self.col_idx[..] {
            return Err(VerifyError::SolveStructureMismatch { what: "col_idx" });
        }
        check_solve_schedule(a, self.direction, &self.steps, self.workers)?;
        Ok(VerifiedSolvePlan { plan: self })
    }

    /// Which triangle this plan solves.
    pub fn direction(&self) -> SolveDirection {
        self.direction
    }

    /// The pattern this plan is bound to.
    pub fn fingerprint(&self) -> &PatternFingerprint {
        &self.fingerprint
    }

    /// The barrier-separated schedule.
    pub fn steps(&self) -> &[SolveStep] {
        &self.steps
    }

    /// Depth of the dependency DAG (number of level sets).
    pub fn n_levels(&self) -> usize {
        self.n_levels
    }

    /// Barriers one solve pays: steps minus one for a real team, zero
    /// for a single worker (the level-merge knob exists to shrink
    /// this below `n_levels - 1`).
    pub fn n_barriers(&self) -> usize {
        if self.workers > 1 {
            self.steps.len().saturating_sub(1)
        } else {
            0
        }
    }

    /// Resolved worker-team size.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// The knobs this plan was built with (as given, sentinels intact).
    pub fn config(&self) -> SolveConfig {
        self.config
    }

    fn check_dims(&self, b: &[T], x: &[T]) -> Result<(), PlanError> {
        if b.len() != self.fingerprint.m {
            return Err(PlanError::DimensionMismatch {
                what: "rhs vector",
                expected: self.fingerprint.m,
                got: b.len(),
            });
        }
        if x.len() != self.fingerprint.n {
            return Err(PlanError::DimensionMismatch {
                what: "solution vector",
                expected: self.fingerprint.n,
                got: x.len(),
            });
        }
        Ok(())
    }

    /// March the worker team through the schedule. Callers guarantee
    /// `values.len() == fingerprint.nnz`, `b.len() == m`,
    /// `x.len() == n`; everything else the kernel needs holds by
    /// construction: the snapshot came from a matrix `level_sets`
    /// validated (square, on-triangle, in-bounds columns, full
    /// diagonal), the steps cover rows in dependency order, and the
    /// fields are private so no safe code can break those invariants
    /// after the build.
    fn run(&self, values: &[T], b: &[T], x: &mut [T]) {
        let xv = XVec::new(x);
        stepped_for_each(self.workers, &self.parallel_flags, |step, role, _w| {
            match &self.steps[step] {
                SolveStep::Serial { rows } => {
                    // SAFETY: serial steps run on one worker; earlier
                    // rows of the chunk and all prior steps are done.
                    unsafe { solve_rows(&self.row_ptr, &self.col_idx, values, b, xv, rows) }
                }
                SolveStep::Parallel { rows, cuts } => {
                    let span = &rows[cuts[role]..cuts[role + 1]];
                    // SAFETY: level rows are mutually independent and
                    // the cuts are disjoint, so this worker's span
                    // races with nobody; dependencies sit in earlier,
                    // barrier-separated steps.
                    unsafe { solve_rows(&self.row_ptr, &self.col_idx, values, b, xv, span) }
                }
            }
        });
    }
}

impl<T: Scalar> std::fmt::Debug for SolvePlan<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SolvePlan")
            .field("direction", &self.direction)
            .field("m", &self.fingerprint.m)
            .field("nnz", &self.fingerprint.nnz)
            .field("n_levels", &self.n_levels)
            .field("steps", &self.steps.len())
            .field("workers", &self.workers)
            .finish()
    }
}

/// A solve plan whose schedule has been *proven* dependency-respecting
/// by [`SolvePlan::verify`] — the token that unlocks
/// [`solve_unchecked`](Self::solve_unchecked).
///
/// The only way to obtain one is through `verify`; the wrapped plan is
/// immutable from outside, so the proof cannot go stale for the
/// pattern it was established against.
pub struct VerifiedSolvePlan<T: Scalar> {
    plan: SolvePlan<T>,
}

impl<T: Scalar> VerifiedSolvePlan<T> {
    /// Solve without the per-call O(m) fingerprint scan.
    ///
    /// Validation is O(1): vector lengths plus the matrix's dimensions
    /// and NNZ against the compiled fingerprint. Structure always comes
    /// from the proven snapshot, so handing this a different matrix
    /// that happens to share dimensions and NNZ produces wrong *values*
    /// (never undefined behaviour — the dependency order the threads
    /// rely on is a property of the snapshot, not of `a`). Value-only
    /// updates — the intended use — are always fine.
    pub fn solve_unchecked(&self, a: &CsrMatrix<T>, b: &[T], x: &mut [T]) -> Result<(), PlanError> {
        let fp = &self.plan.fingerprint;
        self.plan.check_dims(b, x)?;
        if a.n_rows() != fp.m || a.n_cols() != fp.n || a.nnz() != fp.nnz {
            return Err(PlanError::PatternMismatch {
                expected: *fp,
                got: PatternFingerprint::of(a),
            });
        }
        self.plan.run(a.values(), b, x);
        Ok(())
    }

    /// The checked solve path (full fingerprint validation), for
    /// callers that want the proof *and* the per-call pattern guard.
    pub fn solve(&self, a: &CsrMatrix<T>, b: &[T], x: &mut [T]) -> Result<(), PlanError> {
        self.plan.solve(a, b, x)
    }

    /// The underlying plan.
    pub fn plan(&self) -> &SolvePlan<T> {
        &self.plan
    }

    /// Unwrap, dropping the proof token.
    pub fn into_inner(self) -> SolvePlan<T> {
        self.plan
    }
}

impl<T: Scalar> std::fmt::Debug for VerifiedSolvePlan<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("VerifiedSolvePlan")
            .field("plan", &self.plan)
            .finish()
    }
}

/// Why a composed solve pipeline ([`SymgsPlan`]) failed to build.
#[derive(Debug)]
pub enum SolveError {
    /// The matrix violated a structural premise (not square, not
    /// triangular where required, missing diagonal).
    Build(SolveBuildError),
    /// A component schedule or plan failed its verification proof —
    /// this indicates a planner bug, not bad input.
    Verify(VerifyError),
}

impl std::fmt::Display for SolveError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SolveError::Build(e) => write!(f, "solve build rejected the matrix: {e}"),
            SolveError::Verify(e) => write!(f, "solve schedule failed verification: {e}"),
        }
    }
}

impl std::error::Error for SolveError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SolveError::Build(e) => Some(e),
            SolveError::Verify(e) => Some(e),
        }
    }
}

impl From<SolveBuildError> for SolveError {
    fn from(e: SolveBuildError) -> Self {
        SolveError::Build(e)
    }
}

impl From<VerifyError> for SolveError {
    fn from(e: VerifyError) -> Self {
        SolveError::Verify(e)
    }
}

/// A compiled symmetric Gauss-Seidel sweep over a general square matrix
/// `A = L + D + U`, composed entirely from verified parts:
///
/// 1. `r = b - U x`   — verified SpMV plan over the strict upper half
/// 2. `(L + D) x = r` — verified forward solve
/// 3. `r = b - L x`   — verified SpMV plan over the strict lower half
/// 4. `(D + U) x = r` — verified backward solve
///
/// This is exactly the composed definition of
/// [`spmv_sparse::solve::symgs_seq`], so the result is bit-for-bit
/// identical to the sequential reference at every worker count: the
/// SpMV plans reproduce `spmv_seq` exactly (per-row storage-order
/// accumulation) and the verified solves reproduce `sptrsv_seq`
/// exactly.
///
/// The split is structural and done once; each
/// [`apply`](SymgsPlan::apply) refreshes the halves' values in O(nnz)
/// only when the source matrix's value generation changed.
pub struct SymgsPlan<T: Scalar> {
    fingerprint: PatternFingerprint,
    halves: TriangularHalves<T>,
    forward: VerifiedSolvePlan<T>,
    backward: VerifiedSolvePlan<T>,
    upper_spmv: VerifiedPlan<T>,
    lower_spmv: VerifiedPlan<T>,
    /// Residual scratch, allocated once.
    r: Vec<T>,
}

impl<T: Scalar> SymgsPlan<T> {
    /// Build a sweep for `a` with the default [`SolveConfig`]. Rejects
    /// non-square matrices and rows without a structural diagonal.
    pub fn build(a: &CsrMatrix<T>) -> Result<Self, SolveError> {
        Self::build_with(a, SolveConfig::default())
    }

    /// [`build`](Self::build) with explicit solve knobs (shared by the
    /// forward and backward halves; the residual SpMV plans use the
    /// same worker count).
    pub fn build_with(a: &CsrMatrix<T>, config: SolveConfig) -> Result<Self, SolveError> {
        let halves = split_triangular(a)?;
        let (workers, _) = config.resolve();
        let forward = SolvePlan::build_with(halves.lower(), SolveDirection::Forward, config)?
            .verify(halves.lower())?;
        let backward = SolvePlan::build_with(halves.upper(), SolveDirection::Backward, config)?
            .verify(halves.upper())?;
        let spmv_for = |half: &CsrMatrix<T>| -> Result<VerifiedPlan<T>, SolveError> {
            let backend = crate::exec::NativeCpuBackend::new().with_workers(workers);
            let plan = SpmvPlan::compile(
                half,
                Strategy::single_kernel(KernelId::Serial),
                Box::new(backend),
            );
            Ok(plan.verify(half)?)
        };
        let upper_spmv = spmv_for(halves.strict_upper())?;
        let lower_spmv = spmv_for(halves.strict_lower())?;
        Ok(Self {
            fingerprint: PatternFingerprint::of(a),
            r: vec![T::ZERO; a.n_rows()],
            halves,
            forward,
            backward,
            upper_spmv,
            lower_spmv,
        })
    }

    /// Run one sweep: `a` must fingerprint-match the build matrix
    /// (values may differ — they are re-copied into the halves when
    /// stale), `b` is the right-hand side, `x` the iterate updated in
    /// place.
    pub fn apply(&mut self, a: &CsrMatrix<T>, b: &[T], x: &mut [T]) -> Result<(), PlanError> {
        let got = PatternFingerprint::of(a);
        if got != self.fingerprint {
            return Err(PlanError::PatternMismatch {
                expected: self.fingerprint,
                got,
            });
        }
        if b.len() != self.fingerprint.m {
            return Err(PlanError::DimensionMismatch {
                what: "rhs vector",
                expected: self.fingerprint.m,
                got: b.len(),
            });
        }
        if x.len() != self.fingerprint.n {
            return Err(PlanError::DimensionMismatch {
                what: "solution vector",
                expected: self.fingerprint.n,
                got: x.len(),
            });
        }
        self.halves.ensure_values(a);
        let Self {
            halves,
            forward,
            backward,
            upper_spmv,
            lower_spmv,
            r,
            ..
        } = self;
        upper_spmv.execute_unchecked(halves.strict_upper(), x, r)?;
        for (ri, &bi) in r.iter_mut().zip(b) {
            *ri = bi - *ri;
        }
        forward.solve_unchecked(halves.lower(), r, x)?;
        lower_spmv.execute_unchecked(halves.strict_lower(), x, r)?;
        for (ri, &bi) in r.iter_mut().zip(b) {
            *ri = bi - *ri;
        }
        backward.solve_unchecked(halves.upper(), r, x)?;
        Ok(())
    }

    /// The pattern this sweep is bound to.
    pub fn fingerprint(&self) -> &PatternFingerprint {
        &self.fingerprint
    }

    /// The verified forward (`L + D`) solve.
    pub fn forward(&self) -> &VerifiedSolvePlan<T> {
        &self.forward
    }

    /// The verified backward (`D + U`) solve.
    pub fn backward(&self) -> &VerifiedSolvePlan<T> {
        &self.backward
    }

    /// The structural split the sweep runs on.
    pub fn halves(&self) -> &TriangularHalves<T> {
        &self.halves
    }
}

impl<T: Scalar> std::fmt::Debug for SymgsPlan<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SymgsPlan")
            .field("m", &self.fingerprint.m)
            .field("nnz", &self.fingerprint.nnz)
            .field("forward", &self.forward)
            .field("backward", &self.backward)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spmv_sparse::gen;
    use spmv_sparse::solve::sptrsv_seq;

    fn tril(m: usize, seed: u64) -> CsrMatrix<f64> {
        let a = gen::random_uniform::<f64>(m, m, 1, 6, seed);
        let mut b = gen::RowsBuilder::<f64>::new(m);
        let mut cols = Vec::new();
        let mut vals = Vec::new();
        for i in 0..m {
            cols.clear();
            vals.clear();
            let (rc, rv) = a.row(i);
            let mut dom = 1.0;
            for (&c, &v) in rc.iter().zip(rv) {
                if (c as usize) < i {
                    cols.push(c);
                    vals.push(v);
                    dom += v.abs();
                }
            }
            cols.push(i as u32);
            vals.push(dom);
            b.push_row_sorted(&cols, &vals);
        }
        b.finish()
    }

    #[test]
    fn verified_solve_matches_reference_bitwise() {
        let a = tril(400, 9);
        let b: Vec<f64> = (0..400).map(|i| ((i % 11) as f64) - 5.0).collect();
        let mut x_ref = vec![0.0; 400];
        sptrsv_seq(&a, SolveDirection::Forward, &b, &mut x_ref).unwrap();
        for workers in [1usize, 2, 4, 7] {
            for min_parallel in [1usize, 0, usize::MAX] {
                let plan = SolvePlan::build_with(
                    &a,
                    SolveDirection::Forward,
                    SolveConfig {
                        workers,
                        min_parallel_rows: min_parallel,
                    },
                )
                .unwrap()
                .verify(&a)
                .unwrap();
                let mut x = vec![0.0; 400];
                plan.solve_unchecked(&a, &b, &mut x).unwrap();
                for (i, (got, want)) in x.iter().zip(&x_ref).enumerate() {
                    assert_eq!(
                        got.to_bits(),
                        want.to_bits(),
                        "workers={workers} min_parallel={min_parallel} row {i}"
                    );
                }
            }
        }
    }

    #[test]
    fn plan_rejects_wrong_matrix_and_dims() {
        let a = tril(60, 1);
        let other = tril(60, 2);
        let plan = SolvePlan::build(&a, SolveDirection::Forward).unwrap();
        let b = vec![1.0; 60];
        let mut x = vec![0.0; 60];
        assert!(matches!(
            plan.solve(&other, &b, &mut x),
            Err(PlanError::PatternMismatch { .. })
        ));
        assert!(matches!(
            plan.solve(&a, &b[..59], &mut x),
            Err(PlanError::DimensionMismatch { .. })
        ));
        // Verification against a structurally different matrix fails
        // even before the prover runs.
        let plan = SolvePlan::build(&a, SolveDirection::Forward).unwrap();
        assert!(plan.verify(&other).is_err());
    }

    #[test]
    fn build_rejects_non_triangular_input() {
        let full = gen::banded::<f64>(30, 2, 5);
        assert!(matches!(
            SolvePlan::build(&full, SolveDirection::Forward),
            Err(SolveBuildError::OffTriangle { .. })
        ));
        assert!(matches!(
            SolvePlan::build(&tril(30, 3).transpose(), SolveDirection::Forward),
            Err(SolveBuildError::OffTriangle { .. })
        ));
    }

    #[test]
    fn serial_config_has_zero_barriers() {
        let a = tril(200, 4);
        let plan = SolvePlan::<f64>::build_with(
            &a,
            SolveDirection::Forward,
            SolveConfig {
                workers: 1,
                min_parallel_rows: 0,
            },
        )
        .unwrap();
        assert_eq!(plan.n_barriers(), 0);
        assert_eq!(plan.steps().len(), 1);
        assert!(!plan.steps()[0].is_parallel());
    }

    #[test]
    fn merging_reduces_barriers() {
        let a = tril(300, 5);
        let fine = SolvePlan::<f64>::build_with(
            &a,
            SolveDirection::Forward,
            SolveConfig {
                workers: 4,
                min_parallel_rows: 1,
            },
        )
        .unwrap();
        let merged = SolvePlan::<f64>::build_with(
            &a,
            SolveDirection::Forward,
            SolveConfig {
                workers: 4,
                min_parallel_rows: 64,
            },
        )
        .unwrap();
        assert_eq!(fine.steps().len(), fine.n_levels());
        assert!(
            merged.n_barriers() <= fine.n_barriers(),
            "merging must not add barriers: {} vs {}",
            merged.n_barriers(),
            fine.n_barriers()
        );
    }

    #[test]
    fn symgs_plan_matches_sequential_sweep_bitwise() {
        let a = {
            // General square matrix with a guaranteed dominant diagonal.
            let base = gen::banded::<f64>(150, 3, 9);
            let m = base.n_rows();
            let mut b = gen::RowsBuilder::<f64>::new(m);
            let mut cols = Vec::new();
            let mut vals = Vec::new();
            for i in 0..m {
                cols.clear();
                vals.clear();
                let (rc, rv) = base.row(i);
                let mut dom = 1.0;
                let mut has_diag = false;
                for (&c, &v) in rc.iter().zip(rv) {
                    if c as usize == i {
                        has_diag = true;
                    }
                    dom += v.abs();
                }
                for (&c, &v) in rc.iter().zip(rv) {
                    if c as usize == i {
                        cols.push(c);
                        vals.push(dom);
                    } else {
                        cols.push(c);
                        vals.push(v);
                    }
                }
                if !has_diag {
                    cols.push(i as u32);
                    vals.push(dom);
                    let mut paired: Vec<(u32, f64)> =
                        cols.iter().copied().zip(vals.iter().copied()).collect();
                    paired.sort_by_key(|&(c, _)| c);
                    cols.clear();
                    vals.clear();
                    for (c, v) in paired {
                        cols.push(c);
                        vals.push(v);
                    }
                }
                b.push_row_sorted(&cols, &vals);
            }
            b.finish()
        };
        let m = a.n_rows();
        let b: Vec<f64> = (0..m).map(|i| ((i % 7) as f64) - 3.0).collect();
        let mut x_ref = vec![0.0; m];
        for _ in 0..3 {
            spmv_sparse::solve::symgs_seq(&a, &b, &mut x_ref).unwrap();
        }
        for workers in [1usize, 2, 4, 7] {
            let mut plan = SymgsPlan::build_with(
                &a,
                SolveConfig {
                    workers,
                    min_parallel_rows: 0,
                },
            )
            .unwrap();
            let mut x = vec![0.0; m];
            for _ in 0..3 {
                plan.apply(&a, &b, &mut x).unwrap();
            }
            for (i, (got, want)) in x.iter().zip(&x_ref).enumerate() {
                assert_eq!(got.to_bits(), want.to_bits(), "workers={workers} row {i}");
            }
        }
    }

    #[test]
    fn symgs_refreshes_values_on_change() {
        let a0 = tril(80, 7);
        // Make it symmetric-ish general: A = L + L^T keeps the diagonal.
        let mut a = {
            let mut coo = spmv_sparse::CooMatrix::<f64>::new(80, 80);
            for i in 0..80 {
                let (rc, rv) = a0.row(i);
                for (&c, &v) in rc.iter().zip(rv) {
                    coo.push(i, c as usize, v);
                    if (c as usize) != i {
                        coo.push(c as usize, i, v);
                    }
                }
            }
            coo.to_csr()
        };
        let b = vec![1.0; 80];
        let mut plan = SymgsPlan::build(&a).unwrap();
        let mut x1 = vec![0.0; 80];
        plan.apply(&a, &b, &mut x1).unwrap();
        for v in a.values_mut() {
            *v *= 3.0;
        }
        let mut x2 = vec![0.0; 80];
        plan.apply(&a, &b, &mut x2).unwrap();
        let mut x2_ref = vec![0.0; 80];
        spmv_sparse::solve::symgs_seq(&a, &b, &mut x2_ref).unwrap();
        assert_ne!(x1, x2, "value refresh must change the sweep");
        for (got, want) in x2.iter().zip(&x2_ref) {
            assert_eq!(got.to_bits(), want.to_bits());
        }
    }
}
