//! Adversarial inputs for every analyzer: each test constructs a
//! malformed artifact and asserts the *exact* diagnostic variant, so a
//! regression that silently weakens a checker fails loudly. The final
//! test is a seeded fuzz loop asserting the `execute_unchecked` fast
//! path is bit-for-bit identical to the checked path.

use spmv_autotune::binning::BinningScheme;
use spmv_autotune::exec::{NativeCpuBackend, SimGpuBackend};
use spmv_autotune::kernels::KernelId;
use spmv_autotune::model_io::load_model;
use spmv_autotune::plan::{BinDispatch, BinFormat, SpmvPlan};
use spmv_autotune::strategy::Strategy;
use spmv_gpusim::GpuDevice;
use spmv_ml::io::RulesIoError;
use spmv_ml::lint::{lint_ruleset, Finding, LintOptions};
use spmv_ml::rules::{Cond, Rule, RuleSet};
use spmv_sparse::gen;
use spmv_verify::check_dispatch;
use spmv_verify::interleave::{explore, Verdict};
use spmv_verify::models::{BatchModel, CursorModel};
use spmv_verify::VerifyError;

// ---------------------------------------------------------------------
// Analyzer 1: write-set disjointness.
// ---------------------------------------------------------------------

fn sim_plan(a: &spmv_sparse::CsrMatrix<f64>) -> SpmvPlan<f64> {
    let strategy = Strategy {
        binning: BinningScheme::Coarse { u: 10 },
        kernels: vec![KernelId::Subvector(8); 8],
    };
    SpmvPlan::compile(
        a,
        strategy,
        Box::new(SimGpuBackend::new(GpuDevice::kaveri())),
    )
}

/// A hand-built dispatch table where two bins claim the same row must
/// produce `OverlappingRows` naming both bins.
#[test]
fn overlapping_bin_dispatch_names_both_bins() {
    let a = gen::random_uniform::<f64>(20, 20, 1, 3, 42);
    let rows_a: Vec<u32> = (0..12).collect();
    let rows_b: Vec<u32> = (10..20).collect(); // rows 10, 11 overlap
    let nnz_of = |rows: &[u32]| rows.iter().map(|&r| a.row_nnz(r as usize)).sum();
    let dispatch = vec![
        BinDispatch {
            bin_id: 0,
            kernel: KernelId::Serial,
            nnz: nnz_of(&rows_a),
            rows: rows_a,
            format: BinFormat::Csr,
        },
        BinDispatch {
            bin_id: 3,
            kernel: KernelId::Vector,
            nnz: nnz_of(&rows_b),
            rows: rows_b,
            format: BinFormat::Csr,
        },
    ];
    match check_dispatch(&a, &dispatch) {
        Err(VerifyError::OverlappingRows {
            bin_a: 0,
            kernel_a: KernelId::Serial,
            bin_b: 3,
            kernel_b: KernelId::Vector,
            rows,
        }) => {
            assert_eq!(rows, (10, 11), "overlap range should be 10..=11");
        }
        other => panic!("expected OverlappingRows(bins 0 and 3), got {other:?}"),
    }
}

#[test]
fn empty_dispatch_reports_all_rows_uncovered() {
    let a = gen::random_uniform::<f64>(8, 8, 1, 2, 1);
    match check_dispatch(&a, &[]) {
        Err(VerifyError::UncoveredRows { rows: (0, 7) }) => {}
        other => panic!("expected UncoveredRows(0..=7), got {other:?}"),
    }
}

#[test]
fn tampered_plan_dispatch_fails_verification() {
    let a = gen::powerlaw::<f64>(300, 1, 60, 2.0, 5);
    let plan = sim_plan(&a);
    // The compiled plan passes…
    let mut dispatch = plan.dispatch().to_vec();
    check_dispatch(&a, &dispatch).expect("compiled plan must verify");
    // …until its cached NNZ is corrupted.
    dispatch[0].nnz = dispatch[0].nnz.wrapping_add(7);
    assert!(matches!(
        check_dispatch(&a, &dispatch),
        Err(VerifyError::BinNnzMismatch { .. })
    ));
}

// ---------------------------------------------------------------------
// Analyzer 2: rule-set linting.
// ---------------------------------------------------------------------

fn ruleset(rules: Vec<Rule>, default: usize, n_classes: usize, n_attrs: usize) -> RuleSet {
    let names: Vec<String> = (0..n_attrs).map(|i| format!("a{i}")).collect();
    RuleSet::from_parts(rules, default, names, n_classes)
}

fn rule(conds: Vec<Cond>, class: usize) -> Rule {
    Rule {
        conds,
        class,
        accuracy: 0.9,
    }
}

#[test]
fn unreachable_rule_is_reported_with_its_shadow() {
    // Rule 0 matches a0 > 1; rule 1 matches a0 > 5, which implies a0 > 1
    // — rule 1 can never fire first.
    let rs = ruleset(
        vec![
            rule(vec![Cond::Gt(0, 1.0)], 0),
            rule(vec![Cond::Gt(0, 5.0)], 1),
        ],
        0,
        2,
        1,
    );
    let findings = lint_ruleset(&rs, &LintOptions::default());
    assert!(
        findings.iter().any(|f| matches!(
            f,
            Finding::UnreachableRule {
                rule: 1,
                shadowed_by: 0
            }
        )),
        "got {findings:?}"
    );
}

#[test]
fn contradictory_conjunction_is_reported() {
    // a0 <= 2 AND a0 > 5 is unsatisfiable.
    let rs = ruleset(
        vec![rule(vec![Cond::Le(0, 2.0), Cond::Gt(0, 5.0)], 0)],
        0,
        2,
        1,
    );
    let findings = lint_ruleset(&rs, &LintOptions::default());
    assert!(
        findings
            .iter()
            .any(|f| matches!(f, Finding::ContradictoryConds { rule: 0, attr: 0 })),
        "got {findings:?}"
    );
}

#[test]
fn out_of_range_kernel_class_fails_model_load() {
    // Stage-2 declares 11 classes and predicts class 10; the runtime's
    // kernel pool has 9 entries, so dispatch would panic. The load-time
    // lint must refuse it with the exact variant.
    let text = "spmv-model v1\nfeatures TableI\nu-classes 10 100\n\
                ruleset v1\nclasses 2\nattrs m n nnz\ndefault 0\nrule 1 0.9 gt:0:5\nend\n\
                ruleset v1\nclasses 11\nattrs m n nnz u bin\ndefault 0\n\
                rule 10 0.9 gt:0:5\nend\n";
    match load_model(text.as_bytes()) {
        Err(RulesIoError::Lint(findings)) => {
            assert!(
                findings.iter().any(|f| matches!(
                    f,
                    Finding::ClassOutOfRange {
                        class: 10,
                        limit: 9,
                        ..
                    }
                )),
                "got {findings:?}"
            );
        }
        Err(other) => panic!("expected Lint error, got {other:?}"),
        Ok(_) => panic!("corrupt model loaded"),
    }
}

#[test]
fn truncated_model_file_is_a_parse_error() {
    // File ends mid-way through the stage-1 rule-set: stage 2 missing.
    let text = "spmv-model v1\nfeatures TableI\nu-classes 10 100\n\
                ruleset v1\nclasses 2\nattrs m n nnz\ndefault 0\n";
    match load_model(text.as_bytes()) {
        Err(RulesIoError::Parse(_, msg)) => {
            assert!(msg.contains("stage-2"), "unexpected message: {msg}");
        }
        Err(other) => panic!("expected Parse error, got {other:?}"),
        Ok(_) => panic!("truncated model loaded"),
    }
}

// ---------------------------------------------------------------------
// Analyzer 3: concurrency model checking.
// ---------------------------------------------------------------------

#[test]
fn lost_wakeup_bug_is_found_and_correct_protocol_is_not_flagged() {
    let buggy = explore(BatchModel::notify_without_lock(2), 500_000);
    assert!(
        matches!(buggy, Verdict::Deadlock { ref trace } if !trace.is_empty()),
        "got {buggy}"
    );
    let sound = explore(BatchModel::correct(2), 500_000);
    assert!(sound.passed(), "got {sound}");
}

#[test]
fn double_write_bug_is_found_with_a_schedule() {
    match explore(CursorModel::racy_claim(2, 2), 500_000) {
        Verdict::Violation { trace, message } => {
            assert!(!trace.is_empty());
            assert!(message.contains("written"), "got message: {message}");
        }
        other => panic!("expected Violation, got {other}"),
    }
}

// ---------------------------------------------------------------------
// Fast path: execute vs execute_unchecked, bit for bit, under fuzz.
// ---------------------------------------------------------------------

#[test]
fn fuzz_unchecked_execute_is_bit_identical() {
    let strategies = [
        Strategy {
            binning: BinningScheme::Coarse { u: 10 },
            kernels: vec![KernelId::Serial; 8],
        },
        Strategy {
            binning: BinningScheme::Fine,
            kernels: vec![KernelId::Subvector(16); 8],
        },
        Strategy {
            binning: BinningScheme::Hybrid {
                threshold: 16,
                u: 10,
            },
            kernels: vec![KernelId::Vector; 8],
        },
        Strategy::single_kernel(KernelId::Subvector(32)),
    ];
    for seed in 0..12u64 {
        let m = 100 + (seed as usize * 37) % 400;
        let a = gen::powerlaw::<f64>(m, 1, 50 + (seed as usize % 60), 2.0, seed);
        let v: Vec<f64> = (0..a.n_cols())
            .map(|i| (((i as u64).wrapping_mul(seed + 3) % 17) as f64) - 8.0)
            .collect();
        for (si, strategy) in strategies.iter().enumerate() {
            let checked =
                SpmvPlan::compile(&a, strategy.clone(), Box::new(NativeCpuBackend::new()));
            let verified =
                SpmvPlan::compile(&a, strategy.clone(), Box::new(NativeCpuBackend::new()))
                    .verify(&a)
                    .unwrap_or_else(|e| panic!("seed {seed} strategy {si}: verify failed: {e}"));
            let mut u1 = vec![0.0f64; a.n_rows()];
            let mut u2 = vec![0.0f64; a.n_rows()];
            checked.execute(&a, &v, &mut u1).unwrap();
            verified.execute_unchecked(&a, &v, &mut u2).unwrap();
            assert_eq!(u1, u2, "seed {seed} strategy {si}: paths diverge");
        }
    }
}
