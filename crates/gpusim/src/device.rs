//! Device descriptors: the microarchitectural parameters the cost model
//! charges against.

/// Parameters of a simulated GPU.
///
/// The defaults (`GpuDevice::kaveri()`) model the paper's evaluation
/// platform, the GPU half of an AMD A10-7850K "Kaveri" APU: 8 GCN compute
/// units at 720 MHz, each with four 16-lane vector units (64-wide
/// wavefronts), 64 KiB LDS per CU, and a DRAM controller shared with the
/// CPU (dual-channel DDR3-2133, ≈25.6 GB/s peak).
#[derive(Clone, Debug, PartialEq)]
pub struct GpuDevice {
    /// Human-readable name (appears in reports).
    pub name: String,
    /// Number of compute units.
    pub cus: usize,
    /// SIMD units per CU (waves execute concurrently, one per SIMD).
    pub simd_per_cu: usize,
    /// Work-items per wavefront.
    pub wavefront: usize,
    /// Maximum work-group size (the paper launches 256 everywhere).
    pub max_workgroup: usize,
    /// Core clock in MHz (converts cycles to seconds).
    pub clock_mhz: f64,
    /// Peak DRAM bandwidth in GB/s.
    pub dram_gbps: f64,
    /// Cache-line / memory-transaction size in bytes.
    pub cache_line: usize,
    /// Issue cost of one memory transaction, in cycles.
    pub tx_issue_cycles: u64,
    /// Round-trip latency of a dependent memory access, in cycles.
    pub mem_latency_cycles: u64,
    /// Cost of one LDS operation per wavefront, in cycles.
    pub lds_op_cycles: u64,
    /// Cost of one work-group barrier, in cycles.
    pub barrier_cycles: u64,
    /// Fixed overhead of one kernel dispatch, in cycles (the paper pays
    /// one dispatch per non-empty bin, which is what makes over-fine
    /// binning expensive).
    pub launch_overhead_cycles: u64,
    /// LDS capacity per CU in bytes (bounds occupancy).
    pub lds_per_cu: usize,
    /// Maximum wavefronts resident per SIMD (GCN: 10).
    pub max_waves_per_simd: usize,
}

impl GpuDevice {
    /// The paper's platform: AMD A10-7850K APU (Kaveri, GCN 1.1).
    pub fn kaveri() -> Self {
        Self {
            name: "AMD A10-7850K APU (simulated)".into(),
            cus: 8,
            simd_per_cu: 4,
            wavefront: 64,
            max_workgroup: 256,
            clock_mhz: 720.0,
            dram_gbps: 25.6,
            cache_line: 64,
            tx_issue_cycles: 4,
            mem_latency_cycles: 300,
            lds_op_cycles: 2,
            barrier_cycles: 40,
            launch_overhead_cycles: 8_000, // ≈ 11 µs HSA dispatch
            lds_per_cu: 64 * 1024,
            max_waves_per_simd: 10,
        }
    }

    /// A larger discrete-class GPU (more CUs, more bandwidth) used by the
    /// ablation benches to show the tuner adapts across devices.
    pub fn discrete() -> Self {
        Self {
            name: "discrete GCN GPU (simulated)".into(),
            cus: 32,
            clock_mhz: 1000.0,
            dram_gbps: 224.0,
            launch_overhead_cycles: 12_000,
            ..Self::kaveri()
        }
    }

    /// A tiny embedded-class GPU (fewer CUs, less bandwidth), the other
    /// extreme of the ablation.
    pub fn embedded() -> Self {
        Self {
            name: "embedded GCN GPU (simulated)".into(),
            cus: 2,
            clock_mhz: 500.0,
            dram_gbps: 8.0,
            ..Self::kaveri()
        }
    }

    /// Lanes across one CU (`simd_per_cu × 16` on GCN; derived as
    /// `wavefront` here since a wave occupies one SIMD over 4 cycles).
    pub fn waves_per_workgroup(&self, wg_size: usize) -> usize {
        wg_size.div_ceil(self.wavefront)
    }

    /// DRAM bandwidth expressed in bytes per core cycle.
    pub fn bytes_per_cycle(&self) -> f64 {
        (self.dram_gbps * 1e9) / (self.clock_mhz * 1e6)
    }

    /// Convert a cycle count to seconds at this device's clock.
    pub fn cycles_to_seconds(&self, cycles: f64) -> f64 {
        cycles / (self.clock_mhz * 1e6)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kaveri_parameters_match_the_paper_platform() {
        let d = GpuDevice::kaveri();
        assert_eq!(d.cus, 8);
        assert_eq!(d.wavefront, 64);
        assert_eq!(d.max_workgroup, 256);
        assert!((d.clock_mhz - 720.0).abs() < 1e-9);
    }

    #[test]
    fn bytes_per_cycle_is_consistent() {
        let d = GpuDevice::kaveri();
        // 25.6 GB/s at 720 MHz ≈ 35.6 B/cycle.
        assert!((d.bytes_per_cycle() - 35.555).abs() < 0.01);
    }

    #[test]
    fn cycles_to_seconds_roundtrip() {
        let d = GpuDevice::kaveri();
        let s = d.cycles_to_seconds(720e6);
        assert!((s - 1.0).abs() < 1e-12);
    }

    #[test]
    fn presets_differ_where_expected() {
        let k = GpuDevice::kaveri();
        let big = GpuDevice::discrete();
        let small = GpuDevice::embedded();
        assert!(big.cus > k.cus && big.dram_gbps > k.dram_gbps);
        assert!(small.cus < k.cus && small.dram_gbps < k.dram_gbps);
        assert_eq!(big.wavefront, k.wavefront);
    }

    #[test]
    fn waves_per_workgroup_rounds_up() {
        let d = GpuDevice::kaveri();
        assert_eq!(d.waves_per_workgroup(256), 4);
        assert_eq!(d.waves_per_workgroup(64), 1);
        assert_eq!(d.waves_per_workgroup(65), 2);
        assert_eq!(d.waves_per_workgroup(1), 1);
    }

    #[test]
    fn clone_and_eq_are_structural() {
        let d = GpuDevice::kaveri();
        assert_eq!(d.clone(), d);
        let mut e = d.clone();
        e.cus = 99;
        assert_ne!(d, e);
    }
}
