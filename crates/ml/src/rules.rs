//! Rule-set extraction — C5.0's "ruleset" output mode, which is exactly
//! what the paper consumes ("the C5.0 can offer a rule-set, which is a
//! set of if-then statements", §III-C).
//!
//! Every root-to-leaf path of a trained tree becomes one rule; rule
//! conditions are then greedily simplified (dropped while the pessimistic
//! error on the training data does not worsen), and rules are ordered by
//! their pessimistic accuracy with a majority-class default at the end.

use crate::dataset::Dataset;
use crate::prune::pessimistic_errors;
use crate::tree::{DecisionTree, Node};

/// One condition of a rule.
#[derive(Clone, Debug, PartialEq)]
pub enum Cond {
    /// `row[attr] ≤ value`.
    Le(usize, f64),
    /// `row[attr] > value`.
    Gt(usize, f64),
    /// Categorical equality `row[attr] == code`.
    Eq(usize, usize),
}

impl Cond {
    /// Whether a row satisfies the condition.
    #[inline]
    pub fn matches(&self, row: &[f64]) -> bool {
        match *self {
            Cond::Le(a, v) => row[a] <= v,
            Cond::Gt(a, v) => row[a] > v,
            Cond::Eq(a, c) => row[a] as usize == c,
        }
    }

    fn render(&self, names: &[String]) -> String {
        match *self {
            Cond::Le(a, v) => format!("{} <= {:.6}", names[a], v),
            Cond::Gt(a, v) => format!("{} > {:.6}", names[a], v),
            Cond::Eq(a, c) => format!("{} = {}", names[a], c),
        }
    }
}

/// An if-then rule.
#[derive(Clone, Debug, PartialEq)]
pub struct Rule {
    /// Conjunction of conditions.
    pub conds: Vec<Cond>,
    /// Class predicted when all conditions hold.
    pub class: usize,
    /// Pessimistic accuracy estimate on the training data (orders the
    /// rule list).
    pub accuracy: f64,
}

impl Rule {
    /// Whether a row satisfies every condition.
    pub fn matches(&self, row: &[f64]) -> bool {
        self.conds.iter().all(|c| c.matches(row))
    }
}

/// An ordered rule list with a default class.
#[derive(Clone, Debug)]
pub struct RuleSet {
    rules: Vec<Rule>,
    default_class: usize,
    attr_names: Vec<String>,
    n_classes: usize,
}

impl RuleSet {
    /// Extract and simplify a rule-set from a trained tree, using `data`
    /// (normally the training set) to estimate rule quality.
    pub fn from_tree(tree: &DecisionTree, data: &Dataset, cf: f64) -> Self {
        let mut raw: Vec<(Vec<Cond>, usize)> = Vec::new();
        collect_paths(tree, tree.root(), &mut Vec::new(), &mut raw);
        let mut rules: Vec<Rule> = raw
            .into_iter()
            .map(|(conds, class)| simplify(conds, class, data, cf))
            .collect();
        // Order by estimated accuracy, longest-first among ties so more
        // specific rules shadow generic ones.
        rules.sort_by(|a, b| {
            b.accuracy
                .partial_cmp(&a.accuracy)
                .unwrap()
                .then(b.conds.len().cmp(&a.conds.len()))
        });
        let all: Vec<usize> = (0..data.len()).collect();
        let default_class = data.majority_class(&all);
        Self {
            rules,
            default_class,
            attr_names: tree.attr_names().to_vec(),
            n_classes: tree.n_classes(),
        }
    }

    /// Predict by first matching rule, falling back to the default class.
    pub fn predict(&self, row: &[f64]) -> usize {
        for r in &self.rules {
            if r.matches(row) {
                return r.class;
            }
        }
        self.default_class
    }

    /// Rebuild a rule-set from parts (used by [`crate::io`]).
    pub fn from_parts(
        rules: Vec<Rule>,
        default_class: usize,
        attr_names: Vec<String>,
        n_classes: usize,
    ) -> Self {
        assert!(default_class < n_classes);
        Self {
            rules,
            default_class,
            attr_names,
            n_classes,
        }
    }

    /// The rules, in match order.
    pub fn rules(&self) -> &[Rule] {
        &self.rules
    }

    /// Attribute names, in row order.
    pub fn attr_names(&self) -> &[String] {
        &self.attr_names
    }

    /// The fallback class.
    pub fn default_class(&self) -> usize {
        self.default_class
    }

    /// Number of target classes.
    pub fn n_classes(&self) -> usize {
        self.n_classes
    }

    /// Render as C5.0-style `if … then class …` text.
    pub fn dump(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        for (i, r) in self.rules.iter().enumerate() {
            let conds = if r.conds.is_empty() {
                "true".to_string()
            } else {
                r.conds
                    .iter()
                    .map(|c| c.render(&self.attr_names))
                    .collect::<Vec<_>>()
                    .join(" and ")
            };
            let _ = writeln!(
                out,
                "rule {i}: if {conds} then class {} [acc {:.3}]",
                r.class, r.accuracy
            );
        }
        let _ = writeln!(out, "default: class {}", self.default_class);
        out
    }
}

fn collect_paths(
    tree: &DecisionTree,
    node: usize,
    path: &mut Vec<Cond>,
    out: &mut Vec<(Vec<Cond>, usize)>,
) {
    match tree.node(node) {
        Node::Leaf { class, .. } => out.push((path.clone(), *class)),
        Node::Numeric {
            attr,
            threshold,
            left,
            right,
            ..
        } => {
            path.push(Cond::Le(*attr, *threshold));
            collect_paths(tree, *left, path, out);
            path.pop();
            path.push(Cond::Gt(*attr, *threshold));
            collect_paths(tree, *right, path, out);
            path.pop();
        }
        Node::Categorical { attr, children, .. } => {
            for (code, &c) in children.iter().enumerate() {
                path.push(Cond::Eq(*attr, code));
                collect_paths(tree, c, path, out);
                path.pop();
            }
        }
    }
}

/// Pessimistic error of the rule `conds → class` on `data`.
fn rule_pessimistic(conds: &[Cond], class: usize, data: &Dataset, cf: f64) -> (f64, f64) {
    let mut n = 0.0;
    let mut e = 0.0;
    for i in 0..data.len() {
        let row = data.row(i);
        if conds.iter().all(|c| c.matches(row)) {
            let w = data.weight(i);
            n += w;
            if data.label(i) != class {
                e += w;
            }
        }
    }
    (n, pessimistic_errors(n, e, cf))
}

/// Greedily drop conditions while the pessimistic error rate does not
/// increase (C4.5rules' simplification step).
fn simplify(mut conds: Vec<Cond>, class: usize, data: &Dataset, cf: f64) -> Rule {
    let (n, est) = rule_pessimistic(&conds, class, data, cf);
    let mut rate = if n > 0.0 { est / n } else { 1.0 };
    loop {
        let mut best: Option<(usize, f64, f64, f64)> = None; // (idx, n, est, rate)
        for k in 0..conds.len() {
            let mut trial = conds.clone();
            trial.remove(k);
            let (tn, test_) = rule_pessimistic(&trial, class, data, cf);
            let trate = if tn > 0.0 { test_ / tn } else { 1.0 };
            if trate <= rate + 1e-12 && best.is_none_or(|(_, _, _, br)| trate < br) {
                best = Some((k, tn, test_, trate));
            }
        }
        match best {
            Some((k, _tn, _test, trate)) => {
                conds.remove(k);
                rate = trate;
                if conds.is_empty() {
                    break;
                }
            }
            None => break,
        }
    }
    Rule {
        conds,
        class,
        accuracy: 1.0 - rate,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::AttrSpec;
    use crate::tree::TreeConfig;

    fn threshold_ds() -> Dataset {
        let mut d = Dataset::new(
            vec![AttrSpec::numeric("x"), AttrSpec::numeric("noise")],
            vec!["lo".into(), "hi".into()],
        );
        for i in 0..100 {
            d.push(&[i as f64, (i * 7 % 13) as f64], usize::from(i >= 50));
        }
        d
    }

    #[test]
    fn ruleset_predicts_like_the_tree_on_clean_data() {
        let d = threshold_ds();
        let t = DecisionTree::fit(&d, &TreeConfig::default());
        let rs = RuleSet::from_tree(&t, &d, 0.25);
        for i in 0..d.len() {
            assert_eq!(rs.predict(d.row(i)), d.label(i), "row {i}");
        }
    }

    #[test]
    fn rules_are_simplified() {
        let d = threshold_ds();
        let t = DecisionTree::fit(&d, &TreeConfig::default());
        let rs = RuleSet::from_tree(&t, &d, 0.25);
        // The clean threshold problem needs rules of at most 1 condition.
        assert!(rs.rules().iter().all(|r| r.conds.len() <= 1));
    }

    #[test]
    fn dump_is_readable() {
        let d = threshold_ds();
        let t = DecisionTree::fit(&d, &TreeConfig::default());
        let rs = RuleSet::from_tree(&t, &d, 0.25);
        let s = rs.dump();
        assert!(s.contains("if"), "{s}");
        assert!(s.contains("then class"), "{s}");
        assert!(s.contains("default"), "{s}");
    }

    #[test]
    fn default_class_is_majority() {
        let mut d = Dataset::new(vec![AttrSpec::numeric("x")], vec!["a".into(), "b".into()]);
        for _ in 0..30 {
            d.push(&[0.0], 1);
        }
        d.push(&[1.0], 0);
        let t = DecisionTree::fit(&d, &TreeConfig::default());
        let rs = RuleSet::from_tree(&t, &d, 0.25);
        assert_eq!(rs.default_class(), 1);
    }

    #[test]
    fn cond_matching_semantics() {
        assert!(Cond::Le(0, 5.0).matches(&[5.0]));
        assert!(!Cond::Le(0, 5.0).matches(&[5.1]));
        assert!(Cond::Gt(0, 5.0).matches(&[5.1]));
        assert!(Cond::Eq(1, 3).matches(&[0.0, 3.0]));
        assert!(!Cond::Eq(1, 3).matches(&[0.0, 2.0]));
    }
}
