//! Error type for sparse-matrix construction and I/O.

use std::fmt;

/// Errors produced while constructing, validating, or parsing sparse
/// matrices.
#[derive(Debug)]
pub enum SparseError {
    /// Structural invariant violated (non-monotone row pointer, column
    /// index out of range, array-length mismatch, …).
    InvalidStructure(String),
    /// Dimension mismatch between operands (e.g. SpMV with a wrong-length
    /// vector).
    DimensionMismatch {
        /// Human-readable description of the operation.
        context: String,
        /// Size the operation expected.
        expected: usize,
        /// Size it was given.
        got: usize,
    },
    /// Matrix Market (or other) parse failure, with 1-based line number.
    Parse {
        /// Line at which parsing failed.
        line: usize,
        /// What went wrong.
        message: String,
    },
    /// Underlying I/O failure.
    Io(std::io::Error),
}

impl fmt::Display for SparseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SparseError::InvalidStructure(msg) => write!(f, "invalid sparse structure: {msg}"),
            SparseError::DimensionMismatch {
                context,
                expected,
                got,
            } => write!(
                f,
                "dimension mismatch in {context}: expected {expected}, got {got}"
            ),
            SparseError::Parse { line, message } => {
                write!(f, "parse error at line {line}: {message}")
            }
            SparseError::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

impl std::error::Error for SparseError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SparseError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for SparseError {
    fn from(e: std::io::Error) -> Self {
        SparseError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        let e = SparseError::InvalidStructure("bad".into());
        assert!(e.to_string().contains("bad"));
        let e = SparseError::DimensionMismatch {
            context: "spmv".into(),
            expected: 4,
            got: 5,
        };
        assert!(e.to_string().contains("spmv"));
        assert!(e.to_string().contains('4'));
        let e = SparseError::Parse {
            line: 7,
            message: "nope".into(),
        };
        assert!(e.to_string().contains("line 7"));
    }

    #[test]
    fn io_error_source() {
        use std::error::Error;
        let e = SparseError::from(std::io::Error::other("x"));
        assert!(e.source().is_some());
    }
}
