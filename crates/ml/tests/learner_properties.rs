//! Property tests of the decision-tree learner: it must never panic on
//! odd-but-valid datasets, always emit valid classes, and behave sanely
//! under pruning and weighting.

use proptest::prelude::*;
use spmv_ml::io::{read_ruleset, write_ruleset};
use spmv_ml::{AttrSpec, Dataset, DecisionTree, RuleSet, TreeConfig};

fn arb_dataset() -> impl Strategy<Value = Dataset> {
    // 2 numeric attrs + 1 categorical(3), 2–4 classes, 1–120 rows.
    (2usize..5, 1usize..120).prop_flat_map(|(n_classes, n_rows)| {
        proptest::collection::vec(
            (
                -100.0f64..100.0,
                -1.0f64..1.0,
                0usize..3,
                0usize..n_classes,
            ),
            n_rows,
        )
        .prop_map(move |rows| {
            let mut d = Dataset::new(
                vec![
                    AttrSpec::numeric("x"),
                    AttrSpec::numeric("y"),
                    AttrSpec::categorical("c", 3),
                ],
                (0..n_classes).map(|i| format!("k{i}")).collect(),
            );
            for (x, y, c, label) in rows {
                d.push(&[x, y, c as f64], label);
            }
            d
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn fit_and_predict_never_panic_and_stay_in_range(d in arb_dataset()) {
        let tree = DecisionTree::fit(&d, &TreeConfig::default());
        for i in 0..d.len() {
            let p = tree.predict(d.row(i));
            prop_assert!(p < d.n_classes());
        }
        // Off-distribution probes must also be classified.
        for probe in [[-1e9, 0.0, 0.0], [1e9, -5.0, 2.0], [0.0, 0.0, 1.0]] {
            prop_assert!(tree.predict(&probe) < d.n_classes());
        }
    }

    #[test]
    fn unpruned_tree_fits_training_data_at_least_as_well(d in arb_dataset()) {
        let pruned = DecisionTree::fit(&d, &TreeConfig::default());
        let raw = DecisionTree::fit(&d, &TreeConfig { prune: false, ..Default::default() });
        let err = |t: &DecisionTree| {
            (0..d.len()).filter(|&i| t.predict(d.row(i)) != d.label(i)).count()
        };
        prop_assert!(err(&raw) <= err(&pruned));
        prop_assert!(pruned.n_nodes() <= raw.n_nodes());
    }

    #[test]
    fn ruleset_roundtrips_through_text(d in arb_dataset()) {
        let tree = DecisionTree::fit(&d, &TreeConfig::default());
        let rs = RuleSet::from_tree(&tree, &d, 0.25);
        let mut buf = Vec::new();
        write_ruleset(&rs, &mut buf).unwrap();
        let rs2 = read_ruleset(&buf[..]).unwrap();
        for i in 0..d.len() {
            prop_assert_eq!(rs.predict(d.row(i)), rs2.predict(d.row(i)));
        }
    }

    #[test]
    fn constant_labels_yield_a_single_leaf(rows in 1usize..60, label in 0usize..3) {
        let mut d = Dataset::new(
            vec![AttrSpec::numeric("x")],
            vec!["a".into(), "b".into(), "c".into()],
        );
        for i in 0..rows {
            d.push(&[i as f64], label);
        }
        let tree = DecisionTree::fit(&d, &TreeConfig::default());
        prop_assert_eq!(tree.n_nodes(), 1);
        prop_assert_eq!(tree.predict(&[1e6]), label);
    }

    #[test]
    fn duplicating_examples_does_not_change_predictions(d in arb_dataset()) {
        // Doubling every example (same weights) is an entropy no-op.
        let mut doubled = Dataset::new(
            d.attrs().to_vec(),
            d.class_names().to_vec(),
        );
        for i in 0..d.len() {
            doubled.push(d.row(i), d.label(i));
            doubled.push(d.row(i), d.label(i));
        }
        let t1 = DecisionTree::fit(&d, &TreeConfig { prune: false, min_split: 1.0, ..Default::default() });
        let t2 = DecisionTree::fit(&doubled, &TreeConfig { prune: false, min_split: 1.0, ..Default::default() });
        for i in 0..d.len() {
            prop_assert_eq!(t1.predict(d.row(i)), t2.predict(d.row(i)), "row {}", i);
        }
    }
}
