//! Further sparse kernels the paper's conclusion names as extension
//! targets for the framework ("this approach is also generic to other
//! sparse matrix applications (e.g., SpGeMM, SpElementWise)"):
//! sparse–sparse product (Gustavson's algorithm), sparse addition, and
//! element-wise (Hadamard) product.
//!
//! These run on the CPU; they give the examples real workloads and give
//! future binning/kernel-selection work the same substrate SpMV has.

use crate::csr::CsrMatrix;
use crate::error::SparseError;
use crate::scalar::Scalar;

/// Sparse matrix–matrix product `C = A · B` (Gustavson's row-wise
/// algorithm with a dense accumulator, `O(flops)`).
///
/// # Errors
///
/// Returns [`SparseError::DimensionMismatch`] when `A.n_cols() != B.n_rows()`.
pub fn spgemm<T: Scalar>(a: &CsrMatrix<T>, b: &CsrMatrix<T>) -> Result<CsrMatrix<T>, SparseError> {
    if a.n_cols() != b.n_rows() {
        return Err(SparseError::DimensionMismatch {
            context: "spgemm inner dimension".into(),
            expected: a.n_cols(),
            got: b.n_rows(),
        });
    }
    let n = b.n_cols();
    let mut acc: Vec<T> = vec![T::ZERO; n];
    let mut touched: Vec<u32> = Vec::new();
    let mut row_ptr = Vec::with_capacity(a.n_rows() + 1);
    row_ptr.push(0usize);
    let mut col_idx: Vec<u32> = Vec::new();
    let mut values: Vec<T> = Vec::new();
    for i in 0..a.n_rows() {
        touched.clear();
        let (a_cols, a_vals) = a.row(i);
        for (&k, &av) in a_cols.iter().zip(a_vals) {
            let (b_cols, b_vals) = b.row(k as usize);
            for (&j, &bv) in b_cols.iter().zip(b_vals) {
                let j = j as usize;
                if acc[j] == T::ZERO && !touched.contains(&(j as u32)) {
                    touched.push(j as u32);
                }
                acc[j] += av * bv;
            }
        }
        touched.sort_unstable();
        for &j in &touched {
            col_idx.push(j);
            values.push(acc[j as usize]);
            acc[j as usize] = T::ZERO;
        }
        row_ptr.push(col_idx.len());
    }
    Ok(CsrMatrix::from_parts_unchecked(
        a.n_rows(),
        n,
        row_ptr,
        col_idx,
        values,
    ))
}

/// Sparse addition `C = A + B` by a two-pointer row merge.
///
/// # Errors
///
/// Returns [`SparseError::DimensionMismatch`] on shape mismatch.
pub fn sparse_add<T: Scalar>(
    a: &CsrMatrix<T>,
    b: &CsrMatrix<T>,
) -> Result<CsrMatrix<T>, SparseError> {
    merge(a, b, "sparse_add", |x, y| match (x, y) {
        (Some(x), Some(y)) => Some(x + y),
        (Some(x), None) => Some(x),
        (None, Some(y)) => Some(y),
        (None, None) => None,
    })
}

/// Element-wise (Hadamard) product `C = A ∘ B`: only positions stored in
/// *both* operands survive.
///
/// # Errors
///
/// Returns [`SparseError::DimensionMismatch`] on shape mismatch.
pub fn sparse_elementwise_mul<T: Scalar>(
    a: &CsrMatrix<T>,
    b: &CsrMatrix<T>,
) -> Result<CsrMatrix<T>, SparseError> {
    merge(a, b, "sparse_elementwise_mul", |x, y| match (x, y) {
        (Some(x), Some(y)) => Some(x * y),
        _ => None,
    })
}

fn merge<T: Scalar>(
    a: &CsrMatrix<T>,
    b: &CsrMatrix<T>,
    context: &str,
    f: impl Fn(Option<T>, Option<T>) -> Option<T>,
) -> Result<CsrMatrix<T>, SparseError> {
    if a.n_rows() != b.n_rows() || a.n_cols() != b.n_cols() {
        return Err(SparseError::DimensionMismatch {
            context: format!("{context} shape"),
            expected: a.n_rows(),
            got: b.n_rows(),
        });
    }
    debug_assert!(
        a.rows_sorted() && b.rows_sorted(),
        "{context} needs sorted rows"
    );
    let mut row_ptr = Vec::with_capacity(a.n_rows() + 1);
    row_ptr.push(0usize);
    let mut col_idx = Vec::new();
    let mut values = Vec::new();
    for i in 0..a.n_rows() {
        let (ac, av) = a.row(i);
        let (bc, bv) = b.row(i);
        let (mut p, mut q) = (0usize, 0usize);
        while p < ac.len() || q < bc.len() {
            let (col, x, y) = if q >= bc.len() || (p < ac.len() && ac[p] < bc[q]) {
                let r = (ac[p], Some(av[p]), None);
                p += 1;
                r
            } else if p >= ac.len() || bc[q] < ac[p] {
                let r = (bc[q], None, Some(bv[q]));
                q += 1;
                r
            } else {
                let r = (ac[p], Some(av[p]), Some(bv[q]));
                p += 1;
                q += 1;
                r
            };
            if let Some(v) = f(x, y) {
                col_idx.push(col);
                values.push(v);
            }
        }
        row_ptr.push(col_idx.len());
    }
    Ok(CsrMatrix::from_parts_unchecked(
        a.n_rows(),
        a.n_cols(),
        row_ptr,
        col_idx,
        values,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csr::figure1_example;
    use crate::dense::DenseMatrix;
    use crate::gen;
    use crate::scalar::approx_eq;

    fn dense_mul(a: &DenseMatrix<f64>, b: &DenseMatrix<f64>) -> DenseMatrix<f64> {
        let mut c = DenseMatrix::zeros(a.n_rows(), b.n_cols());
        for i in 0..a.n_rows() {
            for k in 0..a.n_cols() {
                let x = a.get(i, k);
                if x != 0.0 {
                    for j in 0..b.n_cols() {
                        *c.get_mut(i, j) += x * b.get(k, j);
                    }
                }
            }
        }
        c
    }

    #[test]
    fn spgemm_matches_dense_reference() {
        let a = gen::random_uniform::<f64>(40, 30, 1, 6, 1);
        let b = gen::random_uniform::<f64>(30, 50, 1, 6, 2);
        let c = spgemm(&a, &b).unwrap();
        let reference = dense_mul(&a.to_dense(), &b.to_dense());
        let cd = c.to_dense();
        for i in 0..40 {
            for j in 0..50 {
                assert!(
                    approx_eq(cd.get(i, j), reference.get(i, j), 30),
                    "({i},{j}): {} vs {}",
                    cd.get(i, j),
                    reference.get(i, j)
                );
            }
        }
        assert!(c.rows_sorted());
    }

    #[test]
    fn spgemm_identity_is_neutral() {
        let a = figure1_example::<f64>();
        let i4 = CsrMatrix::identity(4);
        assert_eq!(spgemm(&a, &i4).unwrap(), a);
        assert_eq!(spgemm(&i4, &a).unwrap(), a);
    }

    #[test]
    fn spgemm_rejects_mismatched_dims() {
        let a = gen::random_uniform::<f64>(5, 7, 1, 3, 3);
        let b = gen::random_uniform::<f64>(8, 5, 1, 3, 4);
        assert!(spgemm(&a, &b).is_err());
    }

    #[test]
    fn sparse_add_matches_dense() {
        let a = gen::random_uniform::<f64>(25, 25, 1, 5, 5);
        let b = gen::random_uniform::<f64>(25, 25, 1, 5, 6);
        let c = sparse_add(&a, &b).unwrap();
        let (da, db, dc) = (a.to_dense(), b.to_dense(), c.to_dense());
        for i in 0..25 {
            for j in 0..25 {
                assert!(approx_eq(dc.get(i, j), da.get(i, j) + db.get(i, j), 2));
            }
        }
        assert!(c.rows_sorted());
    }

    #[test]
    fn elementwise_keeps_only_common_positions() {
        let a = figure1_example::<f64>();
        let i4 = CsrMatrix::<f64>::identity(4);
        let c = sparse_elementwise_mul(&a, &i4).unwrap();
        // A's diagonal entries: (0,0)=1 and (3,3)=1 only.
        assert_eq!(c.nnz(), 2);
        let d = c.to_dense();
        assert_eq!(d.get(0, 0), 1.0);
        assert_eq!(d.get(3, 3), 1.0);
    }

    #[test]
    fn add_with_self_doubles() {
        let a = figure1_example::<f64>();
        let c = sparse_add(&a, &a).unwrap();
        assert_eq!(c.nnz(), a.nnz());
        for ((_, _, x), (_, _, y)) in c.iter().zip(a.iter()) {
            assert_eq!(x, 2.0 * y);
        }
    }
}
