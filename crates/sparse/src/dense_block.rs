//! Row-major multi-vector blocks for batched SpMV (SpMM).
//!
//! Single-vector SpMV is memory-bandwidth-bound: every apply re-streams
//! the whole matrix for one dot product per row. A [`DenseBlock`] holds
//! `K` right-hand sides side by side in **row-major** layout — element
//! `(i, k)` at `data[i * stride + k]` — so a kernel that has gathered one
//! matrix entry `A[r, c]` can broadcast it against the `K` contiguous
//! values of input row `c`, amortising the matrix traversal over `K`
//! outputs. Column-major (one `Vec` per vector) would make those `K`
//! loads `rows`-strided gathers; row-major makes them one cache line.
//!
//! `stride >= k` is explicit so callers can operate on a sub-block of a
//! wider allocation (e.g. the first 8 columns of a 32-wide buffer)
//! without copying — the batched kernels only ever index
//! `i * stride + k` with `k < k()`, never the slack.

use crate::scalar::Scalar;

/// `rows × k` dense block of `K` column vectors, stored row-major with an
/// explicit row stride (`stride >= k`; slack beyond `k` is never read or
/// written by the kernels).
#[derive(Clone, Debug, PartialEq)]
pub struct DenseBlock<T> {
    rows: usize,
    k: usize,
    stride: usize,
    data: Vec<T>,
}

impl<T: Scalar> DenseBlock<T> {
    /// A zero-filled `rows × k` block with the tight stride `k`.
    pub fn zeros(rows: usize, k: usize) -> Self {
        Self::zeros_strided(rows, k, k)
    }

    /// A zero-filled `rows × k` block with an explicit row stride.
    ///
    /// # Panics
    ///
    /// Panics if `stride < k` (unless both are zero) or the total size
    /// overflows.
    pub fn zeros_strided(rows: usize, k: usize, stride: usize) -> Self {
        assert!(stride >= k, "row stride {stride} shorter than width {k}");
        let len = rows.checked_mul(stride).expect("dense block too large");
        Self {
            rows,
            k,
            stride,
            data: vec![T::ZERO; len],
        }
    }

    /// Build a block from `k` equal-length column vectors (the layout
    /// transpose: `out[i][j] = columns[j][i]`).
    ///
    /// # Panics
    ///
    /// Panics if the columns have unequal lengths.
    pub fn from_columns(columns: &[Vec<T>]) -> Self {
        let rows = columns.first().map_or(0, |c| c.len());
        assert!(
            columns.iter().all(|c| c.len() == rows),
            "columns of unequal length"
        );
        let mut block = Self::zeros(rows, columns.len());
        for (j, col) in columns.iter().enumerate() {
            for (i, &x) in col.iter().enumerate() {
                block.data[i * block.stride + j] = x;
            }
        }
        block
    }

    /// Fill every addressable element `(i, k)` with values from `f(i, k)`.
    /// Stride slack is left untouched.
    pub fn fill_with(&mut self, mut f: impl FnMut(usize, usize) -> T) {
        for i in 0..self.rows {
            for j in 0..self.k {
                self.data[i * self.stride + j] = f(i, j);
            }
        }
    }

    /// Number of rows (the vector length).
    pub fn n_rows(&self) -> usize {
        self.rows
    }

    /// Number of vectors held side by side (`K`).
    pub fn k(&self) -> usize {
        self.k
    }

    /// Row stride in elements (`>= k`).
    pub fn stride(&self) -> usize {
        self.stride
    }

    /// Row `i`: the `k` values `(i, 0..k)`, contiguous.
    pub fn row(&self, i: usize) -> &[T] {
        &self.data[i * self.stride..i * self.stride + self.k]
    }

    /// Mutable row `i`.
    pub fn row_mut(&mut self, i: usize) -> &mut [T] {
        &mut self.data[i * self.stride..i * self.stride + self.k]
    }

    /// Copy column `j` out into a contiguous vector.
    pub fn column(&self, j: usize) -> Vec<T> {
        assert!(j < self.k, "column {j} out of bounds (k = {})", self.k);
        (0..self.rows)
            .map(|i| self.data[i * self.stride + j])
            .collect()
    }

    /// Overwrite column `j` from a contiguous vector.
    ///
    /// # Panics
    ///
    /// Panics if `j >= k` or `col.len() != n_rows`.
    pub fn set_column(&mut self, j: usize, col: &[T]) {
        assert!(j < self.k, "column {j} out of bounds (k = {})", self.k);
        assert_eq!(col.len(), self.rows, "column length != rows");
        for (i, &x) in col.iter().enumerate() {
            self.data[i * self.stride + j] = x;
        }
    }

    /// The backing storage (row-major, including stride slack).
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// Mutable backing storage.
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.data
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_columns_through_rows() {
        let cols = vec![
            vec![1.0f64, 2.0, 3.0],
            vec![10.0, 20.0, 30.0],
            vec![-1.0, -2.0, -3.0],
        ];
        let b = DenseBlock::from_columns(&cols);
        assert_eq!((b.n_rows(), b.k(), b.stride()), (3, 3, 3));
        assert_eq!(b.row(1), &[2.0, 20.0, -2.0]);
        for (j, col) in cols.iter().enumerate() {
            assert_eq!(&b.column(j), col);
        }
    }

    #[test]
    fn strided_blocks_keep_slack_untouched() {
        let mut b = DenseBlock::<f32>::zeros_strided(4, 2, 5);
        b.fill_with(|i, j| (i * 10 + j) as f32);
        assert_eq!(b.row(2), &[20.0, 21.0]);
        // Slack positions stay at their initial zero.
        assert_eq!(b.as_slice()[2 * 5 + 2], 0.0);
        let mut c = b.clone();
        c.set_column(1, &[9.0, 9.0, 9.0, 9.0]);
        assert_eq!(c.column(1), vec![9.0; 4]);
        assert_eq!(c.column(0), b.column(0));
    }

    #[test]
    fn zero_width_and_zero_rows_are_fine() {
        let b = DenseBlock::<f64>::zeros(5, 0);
        assert_eq!(b.k(), 0);
        assert_eq!(b.row(4), &[] as &[f64]);
        let c = DenseBlock::<f64>::zeros(0, 3);
        assert_eq!(c.n_rows(), 0);
        assert_eq!(c.as_slice().len(), 0);
    }

    #[test]
    #[should_panic(expected = "shorter than width")]
    fn stride_below_width_panics() {
        let _ = DenseBlock::<f64>::zeros_strided(2, 4, 3);
    }
}
