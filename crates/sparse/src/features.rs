//! Sparsity feature extraction — the paper's Table I parameters, which
//! feed the two-stage machine-learning model, plus the extended
//! histogram-based features that §IV-C proposes as future work and the
//! column-locality features that drive the bandwidth-tier format gate
//! (delta-compressed indices vs cache-blocked execution; see the plan
//! layer).

use crate::csr::CsrMatrix;
use crate::histogram::RowHistogram;
use crate::scalar::Scalar;

/// Column-locality summary of a row subset — the cheap structural
/// signals the bottleneck classifier uses to pick an index width and to
/// spot scatter-heavy bins (following the lightweight feature-based
/// selection of Elafrou et al.):
///
/// * **column span** (`max col − min col` per row) predicts how far the
///   `x` gathers of one row reach, hence whether per-chunk base+delta
///   indices can be narrow;
/// * **distinct cache lines per row** estimates how many `x` cache lines
///   one row touches — high values mean the gather is a scatter and the
///   working set, not the streamed matrix bytes, is the bottleneck.
///
/// Lines are counted as transitions of `col / (64 / sizeof(T))` in
/// storage order, which is exact for column-sorted rows and an upper
/// bound otherwise. Averages are over **all** listed rows (empty rows
/// contribute zero), so `avg · rows` reconstructs the exact total.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ColumnLocality {
    /// Mean per-row column span (`0.0` for empty rows / subsets).
    pub avg_col_span: f64,
    /// Largest per-row column span.
    pub max_col_span: usize,
    /// Mean distinct-cache-line count per row.
    pub avg_lines_per_row: f64,
}

impl ColumnLocality {
    /// Measure the listed rows of `a`. O(total nnz of the rows).
    pub fn of_rows<T: Scalar>(a: &CsrMatrix<T>, rows: &[u32]) -> Self {
        let line = (64 / T::BYTES).max(1) as u32;
        let mut span_sum = 0.0f64;
        let mut max_span = 0usize;
        let mut lines_sum = 0.0f64;
        for &r in rows {
            let (cols, _) = a.row(r as usize);
            if cols.is_empty() {
                continue;
            }
            let (mut lo, mut hi) = (u32::MAX, 0u32);
            let mut lines = 0u32;
            let mut prev_line = u32::MAX;
            for &c in cols {
                lo = lo.min(c);
                hi = hi.max(c);
                let l = c / line;
                if l != prev_line {
                    lines += 1;
                    prev_line = l;
                }
            }
            let span = (hi - lo) as usize;
            span_sum += span as f64;
            max_span = max_span.max(span);
            lines_sum += lines as f64;
        }
        let denom = rows.len().max(1) as f64;
        Self {
            avg_col_span: span_sum / denom,
            max_col_span: max_span,
            avg_lines_per_row: lines_sum / denom,
        }
    }

    /// Measure every row of `a`.
    pub fn of_matrix<T: Scalar>(a: &CsrMatrix<T>) -> Self {
        let rows: Vec<u32> = (0..a.n_rows() as u32).collect();
        Self::of_rows(a, &rows)
    }
}

/// Which feature vector to extract.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FeatureSet {
    /// Exactly Table I: `{M, N, NNZ, Var_NNZ, Avg_NNZ, Min_NNZ, Max_NNZ}`.
    TableI,
    /// Table I plus the row-NNZ histogram shares the paper's §IV-C
    /// ("Parameters") suggests to capture the ratio of short/medium/long
    /// rows.
    Extended,
}

/// The extracted feature parameters of one sparse matrix (Table I).
///
/// * Basic matrix info: `m` (rows), `n` (columns), `nnz`.
/// * Non-zero distribution info: variance, average, minimum and maximum of
///   non-zeros per row.
#[derive(Clone, Debug, PartialEq)]
pub struct MatrixFeatures {
    /// `M` — the number of rows.
    pub m: usize,
    /// `N` — the number of columns.
    pub n: usize,
    /// `NNZ` — the overall number of non-zeros.
    pub nnz: usize,
    /// `Var_NNZ` — the (population) variance of non-zeros per row.
    pub var_nnz: f64,
    /// `Avg_NNZ` — the average of non-zeros per row.
    pub avg_nnz: f64,
    /// `Min_NNZ` — the minimum of non-zeros per row.
    pub min_nnz: usize,
    /// `Max_NNZ` — the maximum of non-zeros per row.
    pub max_nnz: usize,
    /// Extended features (§IV-C): share of rows whose NNZ falls in each
    /// power-of-ten histogram bucket `[1, 10), [10, 100), [100, 1000), ≥1000`
    /// plus the share of empty rows. Empty unless [`FeatureSet::Extended`]
    /// was requested.
    pub hist_shares: Vec<f64>,
    /// `Avg_col_span` — mean per-row column span (bandwidth-tier gate
    /// input; see [`ColumnLocality`]). Always computed.
    pub avg_col_span: f64,
    /// `Max_col_span` — largest per-row column span.
    pub max_col_span: usize,
    /// `Avg_lines_per_row` — mean distinct-cache-lines-per-row estimate.
    pub avg_lines_per_row: f64,
}

impl MatrixFeatures {
    /// Extract features from a CSR matrix.
    pub fn extract<T: Scalar>(a: &CsrMatrix<T>, set: FeatureSet) -> Self {
        let m = a.n_rows();
        let nnz = a.nnz();
        let avg = if m == 0 { 0.0 } else { nnz as f64 / m as f64 };
        let mut min_nnz = usize::MAX;
        let mut max_nnz = 0usize;
        let mut var_acc = 0.0f64;
        for i in 0..m {
            let r = a.row_nnz(i);
            min_nnz = min_nnz.min(r);
            max_nnz = max_nnz.max(r);
            let d = r as f64 - avg;
            var_acc += d * d;
        }
        if m == 0 {
            min_nnz = 0;
        }
        let var_nnz = if m == 0 { 0.0 } else { var_acc / m as f64 };
        let hist_shares = match set {
            FeatureSet::TableI => Vec::new(),
            FeatureSet::Extended => {
                let h = RowHistogram::of_matrix(a);
                h.decade_shares()
            }
        };
        let locality = ColumnLocality::of_matrix(a);
        Self {
            m,
            n: a.n_cols(),
            nnz,
            var_nnz,
            avg_nnz: avg,
            min_nnz,
            max_nnz,
            hist_shares,
            avg_col_span: locality.avg_col_span,
            max_col_span: locality.max_col_span,
            avg_lines_per_row: locality.avg_lines_per_row,
        }
    }

    /// Flatten into the numeric attribute vector consumed by the learner,
    /// in the fixed order `{M, N, NNZ, Var_NNZ, Avg_NNZ, Min_NNZ, Max_NNZ}`
    /// (then histogram shares and column-locality features, when
    /// extended — the Table I vector is frozen so checked-in models keep
    /// their attribute count).
    pub fn to_vec(&self) -> Vec<f64> {
        let mut v = vec![
            self.m as f64,
            self.n as f64,
            self.nnz as f64,
            self.var_nnz,
            self.avg_nnz,
            self.min_nnz as f64,
            self.max_nnz as f64,
        ];
        if !self.hist_shares.is_empty() {
            v.extend_from_slice(&self.hist_shares);
            v.push(self.avg_col_span);
            v.push(self.max_col_span as f64);
            v.push(self.avg_lines_per_row);
        }
        v
    }

    /// Names for each position of [`to_vec`](Self::to_vec), used when
    /// printing learned rule-sets.
    pub fn attr_names(set: FeatureSet) -> Vec<&'static str> {
        let mut names = vec!["M", "N", "NNZ", "Var_NNZ", "Avg_NNZ", "Min_NNZ", "Max_NNZ"];
        if set == FeatureSet::Extended {
            names.extend_from_slice(&[
                "Share_empty",
                "Share_1_10",
                "Share_10_100",
                "Share_100_1000",
                "Share_ge_1000",
                "Avg_col_span",
                "Max_col_span",
                "Avg_lines_per_row",
            ]);
        }
        names
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csr::figure1_example;

    #[test]
    fn table1_features_of_figure1() {
        let a = figure1_example::<f64>();
        let f = MatrixFeatures::extract(&a, FeatureSet::TableI);
        assert_eq!(f.m, 4);
        assert_eq!(f.n, 4);
        assert_eq!(f.nnz, 8);
        assert_eq!(f.avg_nnz, 2.0);
        assert_eq!(f.min_nnz, 1);
        assert_eq!(f.max_nnz, 3);
        // rows have nnz {2,2,1,3}; var = ((0)^2+(0)^2+(1)^2+(1)^2)/4 = 0.5
        assert!((f.var_nnz - 0.5).abs() < 1e-12);
        assert!(f.hist_shares.is_empty());
    }

    #[test]
    fn extended_features_have_five_shares_summing_to_one() {
        let a = figure1_example::<f64>();
        let f = MatrixFeatures::extract(&a, FeatureSet::Extended);
        assert_eq!(f.hist_shares.len(), 5);
        let s: f64 = f.hist_shares.iter().sum();
        assert!((s - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_matrix_features_are_zero() {
        let a = crate::csr::CsrMatrix::<f64>::zeros(0, 0);
        let f = MatrixFeatures::extract(&a, FeatureSet::TableI);
        assert_eq!(f.m, 0);
        assert_eq!(f.nnz, 0);
        assert_eq!(f.avg_nnz, 0.0);
        assert_eq!(f.min_nnz, 0);
        assert_eq!(f.max_nnz, 0);
    }

    #[test]
    fn vector_order_is_stable() {
        let a = figure1_example::<f64>();
        let f = MatrixFeatures::extract(&a, FeatureSet::TableI);
        let v = f.to_vec();
        assert_eq!(
            v.len(),
            MatrixFeatures::attr_names(FeatureSet::TableI).len()
        );
        assert_eq!(v[0], 4.0); // M
        assert_eq!(v[2], 8.0); // NNZ
        assert_eq!(v[6], 3.0); // Max_NNZ
    }

    #[test]
    fn extended_vector_appends_locality_after_shares() {
        let a = figure1_example::<f64>();
        let f = MatrixFeatures::extract(&a, FeatureSet::Extended);
        let v = f.to_vec();
        assert_eq!(
            v.len(),
            MatrixFeatures::attr_names(FeatureSet::Extended).len()
        );
        assert_eq!(v[v.len() - 3], f.avg_col_span);
        assert_eq!(v[v.len() - 2], f.max_col_span as f64);
        assert_eq!(v[v.len() - 1], f.avg_lines_per_row);
    }

    #[test]
    fn column_locality_of_banded_and_scattered_rows() {
        // A diagonal: every row spans 0 columns and touches one line.
        let a = crate::csr::CsrMatrix::<f64>::identity(32);
        let loc = ColumnLocality::of_matrix(&a);
        assert_eq!(loc.avg_col_span, 0.0);
        assert_eq!(loc.max_col_span, 0);
        assert_eq!(loc.avg_lines_per_row, 1.0);

        // Two entries 8000 columns apart: span 8000, two distinct lines
        // (f64 line = 8 entries), averaged over 2 rows (one empty).
        let mut coo = crate::CooMatrix::<f64>::new(2, 8_001);
        coo.push(0, 0, 1.0);
        coo.push(0, 8_000, 1.0);
        let b = coo.to_csr();
        let loc = ColumnLocality::of_matrix(&b);
        assert_eq!(loc.max_col_span, 8_000);
        assert_eq!(loc.avg_col_span, 4_000.0);
        assert_eq!(loc.avg_lines_per_row, 1.0);

        // Empty subsets are all-zero, not NaN.
        let none = ColumnLocality::of_rows(&b, &[]);
        assert_eq!(none.avg_lines_per_row, 0.0);
    }

    #[test]
    fn uniform_rows_have_zero_variance() {
        let a = crate::csr::CsrMatrix::<f64>::identity(10);
        let f = MatrixFeatures::extract(&a, FeatureSet::TableI);
        assert_eq!(f.var_nnz, 0.0);
        assert_eq!(f.min_nnz, 1);
        assert_eq!(f.max_nnz, 1);
    }
}
