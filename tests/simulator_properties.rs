//! Randomised tests of cross-crate invariants: kernel correctness on
//! arbitrary matrices, binning partition properties, cost-model axioms.
//! Inputs are drawn from a seeded generator so runs are reproducible.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use spmv_repro::autotune::binning::{bin_matrix, BinningScheme};
use spmv_repro::autotune::kernels::{run_kernel, KernelId, ALL_KERNELS};
use spmv_repro::gpusim::GpuDevice;
use spmv_repro::sparse::scalar::approx_eq;
use spmv_repro::sparse::{CooMatrix, CsrMatrix};

const CASES: usize = 64;

/// An arbitrary small sparse matrix from COO triplets.
fn random_matrix(rng: &mut StdRng) -> CsrMatrix<f64> {
    let m = rng.gen_range(1usize..40);
    let n = rng.gen_range(1usize..40);
    let triplets = rng.gen_range(0usize..200);
    let mut coo = CooMatrix::new(m, n);
    for _ in 0..triplets {
        let r = rng.gen_range(0..m);
        let c = rng.gen_range(0..n);
        let v = rng.gen_range(-5.0f64..5.0);
        coo.push(r, c, v);
    }
    coo.to_csr()
}

fn random_kernel(rng: &mut StdRng) -> KernelId {
    KernelId::from_index(rng.gen_range(0..ALL_KERNELS.len()))
}

fn random_scheme(rng: &mut StdRng) -> BinningScheme {
    match rng.gen_range(0u32..4) {
        0 => BinningScheme::Coarse {
            u: rng.gen_range(1usize..2000),
        },
        1 => BinningScheme::Fine,
        2 => BinningScheme::Single,
        _ => BinningScheme::Hybrid {
            threshold: rng.gen_range(1usize..100),
            u: rng.gen_range(1usize..500),
        },
    }
}

/// Any kernel over any binning of any matrix computes A·v.
#[test]
fn kernels_are_correct_on_arbitrary_matrices() {
    let mut rng = StdRng::seed_from_u64(0xA501);
    for _ in 0..CASES {
        let a = random_matrix(&mut rng);
        let kernel = random_kernel(&mut rng);
        let scheme = random_scheme(&mut rng);
        let v: Vec<f64> = (0..a.n_cols()).map(|i| (i as f64 * 0.37).sin()).collect();
        let reference = a.spmv_seq_alloc(&v).unwrap();
        let device = GpuDevice::kaveri();
        let bins = bin_matrix(&a, scheme);
        assert!(bins.validate().is_ok());
        let mut u = vec![0.0f64; a.n_rows()];
        for b in 0..bins.bins.len() {
            if bins.bins[b].is_empty() {
                continue;
            }
            let rows = bins.expand(b);
            run_kernel(&device, &a, &rows, kernel, &v, &mut u);
        }
        for i in 0..a.n_rows() {
            assert!(
                approx_eq(u[i], reference[i], a.row_nnz(i).max(1)),
                "row {}: {} vs {}",
                i,
                u[i],
                reference[i]
            );
        }
    }
}

/// Binning always partitions the row space, for any granularity.
#[test]
fn binning_partitions_rows() {
    let mut rng = StdRng::seed_from_u64(0xA502);
    for _ in 0..CASES {
        let a = random_matrix(&mut rng);
        let u = rng.gen_range(1usize..5000);
        let bins = bin_matrix(&a, BinningScheme::Coarse { u });
        assert!(bins.validate().is_ok());
        let total: usize = (0..bins.bins.len()).map(|b| bins.expand(b).len()).sum();
        assert_eq!(total, a.n_rows());
    }
}

/// Launch cost is monotone in the row set: running more rows never
/// costs less (same kernel, disjoint union).
#[test]
fn cost_is_monotone_in_rows() {
    let mut rng = StdRng::seed_from_u64(0xA503);
    let device = GpuDevice::kaveri();
    let mut done = 0usize;
    while done < CASES {
        let a = random_matrix(&mut rng);
        let kernel = random_kernel(&mut rng);
        if a.n_rows() < 2 {
            continue;
        }
        done += 1;
        let v = vec![1.0f64; a.n_cols()];
        let mut u = vec![0.0f64; a.n_rows()];
        let half: Vec<u32> = (0..(a.n_rows() / 2) as u32).collect();
        let all: Vec<u32> = (0..a.n_rows() as u32).collect();
        let c_half = run_kernel(&device, &a, &half, kernel, &v, &mut u).cycles;
        let c_all = run_kernel(&device, &a, &all, kernel, &v, &mut u).cycles;
        assert!(c_all + 1e-9 >= c_half, "all {c_all} < half {c_half}");
    }
}

/// The simulator is deterministic.
#[test]
fn pricing_is_deterministic() {
    let mut rng = StdRng::seed_from_u64(0xA504);
    let device = GpuDevice::kaveri();
    for _ in 0..CASES {
        let a = random_matrix(&mut rng);
        let kernel = random_kernel(&mut rng);
        let v = vec![1.0f64; a.n_cols()];
        let rows: Vec<u32> = (0..a.n_rows() as u32).collect();
        let mut u = vec![0.0f64; a.n_rows()];
        let s1 = run_kernel(&device, &a, &rows, kernel, &v, &mut u);
        let s2 = run_kernel(&device, &a, &rows, kernel, &v, &mut u);
        assert_eq!(s1, s2);
    }
}

/// Transpose is an involution and preserves NNZ — the suite and
/// PageRank example rely on it.
#[test]
fn transpose_involution() {
    let mut rng = StdRng::seed_from_u64(0xA505);
    for _ in 0..CASES {
        let a = random_matrix(&mut rng);
        let t = a.transpose();
        assert_eq!(t.nnz(), a.nnz());
        assert_eq!(t.transpose(), a);
    }
}
