//! Scoped data-parallel loops over borrowed data.
//!
//! Built directly on `std::thread::scope`, with a shared atomic cursor
//! for dynamic scheduling: workers repeatedly claim the next chunk of
//! `grain` items until the index space is exhausted. This is the
//! load-balancing discipline the paper's binning is designed around —
//! uneven per-item work (rows of different NNZ) must not serialise on one
//! slow worker.

use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

/// The raw hardware thread budget: the `SPMV_NUM_THREADS` environment
/// variable if set, otherwise the machine's available parallelism
/// (minimum 1). This is what [`crate::topology::Topology::detect`]
/// reports as `cores` — the ceiling placement policies resolve against,
/// *not* the worker count parallel regions use (that is [`num_threads`]).
///
/// Computed once per process and cached: changing `SPMV_NUM_THREADS`
/// after the first launch has no effect for the rest of the process.
pub fn hardware_threads() -> usize {
    static CACHED: OnceLock<usize> = OnceLock::new();
    *CACHED.get_or_init(|| {
        if let Ok(s) = std::env::var("SPMV_NUM_THREADS") {
            if let Ok(n) = s.parse::<usize>() {
                return n.max(1);
            }
        }
        machine_threads()
    })
}

/// The machine's *actual* available parallelism, with no environment
/// override (minimum 1). This is what bench reports record as
/// `hardware_threads`: a sweep that forced 4 workers via
/// `SPMV_NUM_THREADS=4` on a single-core container is oversubscribed,
/// and downstream comparisons need the honest core count to filter
/// such runs — reporting the overridable budget would hide exactly the
/// condition the field exists to flag.
pub fn machine_threads() -> usize {
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// Number of worker threads used by the free functions: the resolved
/// process placement's worker count
/// ([`crate::topology::Placement::from_env`]), so every layer — the flat
/// loops here, the sharded runtime, the thread pool, servers, benches —
/// observes **one** topology per process. `SPMV_PLACEMENT` (or the
/// `SPMV_THREADS` alias) caps this; with neither set it is the hardware
/// budget (`SPMV_NUM_THREADS` or the machine's available parallelism).
///
/// The placement is computed once per process and cached — kernel
/// launches call this on their hot path (per bin, per execute), and
/// re-parsing environment variables there costs syscalls per call.
pub fn num_threads() -> usize {
    crate::topology::Placement::from_env().workers
}

/// Run `body(start, end)` over `[0, n)` in dynamically scheduled chunks of
/// `grain` items across [`num_threads`] workers. `body` must be safe to
/// call concurrently on disjoint ranges.
///
/// Falls back to a plain sequential loop when `n` is small or only one
/// thread is available.
pub fn parallel_for<F>(n: usize, grain: usize, body: F)
where
    F: Fn(usize, usize) + Sync,
{
    let grain = grain.max(1);
    let workers = num_threads();
    if workers == 1 || n <= grain {
        if n > 0 {
            body(0, n);
        }
        return;
    }
    let cursor = AtomicUsize::new(0);
    let workers = workers.min(n.div_ceil(grain));
    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| loop {
                let start = cursor.fetch_add(grain, Ordering::Relaxed);
                if start >= n {
                    break;
                }
                let end = (start + grain).min(n);
                body(start, end);
            });
        }
    });
}

/// Map every index of `[0, n)` through `f` and collect the results in
/// order. Scheduling is dynamic; result placement uses disjoint writes
/// into a pre-sized buffer.
pub fn parallel_map_collect<T, F>(n: usize, grain: usize, f: F) -> Vec<T>
where
    T: Send + Default + Clone,
    F: Fn(usize) -> T + Sync,
{
    let mut out = vec![T::default(); n];
    {
        let out_ptr = SendPtr(out.as_mut_ptr());
        parallel_for(n, grain, |start, end| {
            // SAFETY: chunks are disjoint, so each index is written by
            // exactly one worker; the buffer outlives the scope.
            let p = out_ptr;
            for i in start..end {
                unsafe { *p.0.add(i) = f(i) };
            }
        });
    }
    out
}

struct SendPtr<T>(*mut T);
impl<T> Clone for SendPtr<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for SendPtr<T> {}
// SAFETY: the pointer is only used to write disjoint indices inside the
// scope of `parallel_for`, which joins all workers before returning.
unsafe impl<T: Send> Send for SendPtr<T> {}
// SAFETY: same restriction — shared only between workers writing disjoint
// indices, all joined before the buffer is read.
unsafe impl<T: Send> Sync for SendPtr<T> {}

/// Parallel reduction: fold `[0, n)` with `map`, combining per-worker
/// partials with `combine` starting from `identity`. The combination
/// order is deterministic (chunk order), so floating-point reductions are
/// reproducible for a fixed `n`, `grain`, and thread count.
pub fn parallel_reduce<T, M, C>(n: usize, grain: usize, identity: T, map: M, combine: C) -> T
where
    T: Send + Clone,
    M: Fn(usize, usize) -> T + Sync,
    C: Fn(T, T) -> T,
{
    let grain = grain.max(1);
    if n == 0 {
        return identity;
    }
    let n_chunks = n.div_ceil(grain);
    let partials: Vec<T> = parallel_map_collect_nondefault(n_chunks, 1, |c| {
        let start = c * grain;
        let end = (start + grain).min(n);
        map(start, end)
    });
    partials.into_iter().fold(identity, combine)
}

/// `parallel_map_collect` without the `Default` bound (used internally):
/// collects via per-chunk vectors and concatenation.
fn parallel_map_collect_nondefault<T, F>(n: usize, grain: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let mut out: Vec<Option<T>> = (0..n).map(|_| None).collect();
    let out_ptr = SendPtr(out.as_mut_ptr());
    parallel_for(n, grain, |start, end| {
        let p = out_ptr;
        for i in start..end {
            // SAFETY: disjoint indices, buffer outlives the scope.
            unsafe { *p.0.add(i) = Some(f(i)) };
        }
    });
    out.into_iter()
        .map(|x| x.expect("chunk not computed"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn parallel_for_visits_every_index_once() {
        let n = 10_000;
        let hits: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
        parallel_for(n, 64, |s, e| {
            for h in &hits[s..e] {
                h.fetch_add(1, Ordering::Relaxed);
            }
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn parallel_for_handles_zero_items() {
        parallel_for(0, 16, |_, _| panic!("must not be called"));
    }

    #[test]
    fn parallel_for_small_n_runs_inline() {
        let count = AtomicUsize::new(0);
        parallel_for(3, 100, |s, e| {
            count.fetch_add(e - s, Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 3);
    }

    #[test]
    fn map_collect_preserves_order() {
        let v = parallel_map_collect(1000, 7, |i| i * i);
        assert_eq!(v.len(), 1000);
        for (i, &x) in v.iter().enumerate() {
            assert_eq!(x, i * i);
        }
    }

    #[test]
    fn reduce_sums_correctly() {
        let total = parallel_reduce(
            100_000,
            1024,
            0u64,
            |s, e| (s..e).map(|i| i as u64).sum::<u64>(),
            |a, b| a + b,
        );
        assert_eq!(total, 100_000u64 * 99_999 / 2);
    }

    #[test]
    fn reduce_empty_is_identity() {
        let r = parallel_reduce(0, 16, 42u32, |_, _| 0, |a, b| a + b);
        assert_eq!(r, 42);
    }

    #[test]
    fn reduce_is_deterministic_for_floats() {
        let run = || {
            parallel_reduce(
                50_000,
                128,
                0.0f64,
                |s, e| (s..e).map(|i| (i as f64).sqrt()).sum::<f64>(),
                |a, b| a + b,
            )
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn work_is_actually_distributed() {
        // With uneven per-item work, dynamic scheduling should let more
        // than one thread participate (can't assert timing, but we can
        // assert multiple distinct thread ids touched the loop when
        // hardware allows).
        if num_threads() < 2 {
            return;
        }
        let ids = distinct_thread_ids();
        assert!(ids >= 1);
    }

    fn distinct_thread_ids() -> usize {
        use std::collections::HashSet;
        use std::sync::Mutex;
        let seen = Mutex::new(HashSet::new());
        parallel_for(10_000, 16, |_, _| {
            seen.lock().unwrap().insert(std::thread::current().id());
            std::hint::black_box(0);
        });
        let n = seen.lock().unwrap().len();
        n
    }

    #[test]
    fn nested_parallel_for_does_not_deadlock() {
        let total = AtomicU64::new(0);
        parallel_for(8, 1, |s, e| {
            for _ in s..e {
                parallel_for(100, 10, |s2, e2| {
                    total.fetch_add((e2 - s2) as u64, Ordering::Relaxed);
                });
            }
        });
        assert_eq!(total.load(Ordering::Relaxed), 800);
    }
}
