//! # spmv-verify
//!
//! Static safety and model-soundness analyzers for the SpMV auto-tuning
//! stack, plus the `spmv-lint` driver binary that runs all of them and
//! fails CI on any violation. Three analyzers:
//!
//! 1. **Write-set disjointness** — proves a compiled [`SpmvPlan`]'s
//!    dispatch table writes every output row exactly once (coverage +
//!    disjointness + in-bounds, including the NNZ-balanced
//!    Subvector/Vector splits). The proof engine lives in
//!    `spmv_autotune::verify` — the core crate owns it because the
//!    [`VerifiedPlan`] token it mints must be unforgeable from outside
//!    (its only constructor is `SpmvPlan::verify`, and core cannot
//!    depend on this crate). This crate re-exports it and adds the
//!    [`driver`] that sweeps every (strategy × backend) combination.
//! 2. **Rule-set linting** — `spmv_ml::lint` checks trained classifiers
//!    for unreachable rules, contradictory conjunctions, out-of-range
//!    class ids, dead-default coverage gaps, and NaN-unsafe thresholds;
//!    `spmv_autotune::model_io` runs it at load time so corrupt models
//!    fail before they can mispredict. Re-exported here for the driver.
//! 3. **Concurrency model checking** — [`interleave`] is a loom-style
//!    (std-only) exhaustive-interleaving explorer; [`models`] encodes
//!    the `spmv-parallel` scope/pool protocols as small-N state machines
//!    and detects lost wakeups, double writes, and deadlocks.
//!
//! A fourth, source-level check — [`hygiene`] — enforces the unsafe
//! hygiene rule: every `unsafe` block in the workspace's own crates must
//! carry a `// SAFETY:` comment.

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

pub mod driver;
pub mod hygiene;
pub mod interleave;
pub mod models;

pub use spmv_autotune::plan::{BinDispatch, BinFormat, BinPayload, SpmvPlan, Tile, VerifiedPlan};
pub use spmv_autotune::verify::{check_dispatch, check_payloads, VerifyError};
pub use spmv_ml::lint::{lint_ruleset, lint_tree, Finding, LintOptions, Severity};
