//! Online plan refinement: closing the offline/online loop.
//!
//! The offline pipeline picks a plan from *predicted* behaviour; the
//! serving process then watches how that plan *measures*
//! ([`PlanTelemetry`](spmv_autotune::PlanTelemetry)) and, when the two
//! diverge, spends background time trying to do better:
//!
//! 1. **Classify** — [`classify_plan`] maps the plan's telemetry +
//!    compile-time traffic model onto a bottleneck class
//!    ([`Bottleneck`]) and the compile-time move that addresses it
//!    (re-open the format/specialization gates, cut finer tiles,
//!    enable cache blocking).
//! 2. **Probe** — [`probe_candidate`] compiles and **verifies** the
//!    suggested configuration, then A/B-times candidate vs incumbent
//!    on the live matrix, best-of-N, asserting bit-for-bit equal
//!    outputs along the way.
//! 3. **Publish** — only a measurably faster candidate (by
//!    [`RefineConfig::min_speedup`]) is swapped into the
//!    [`PlanCache`](crate::cache::PlanCache) under the incumbent's
//!    key. In-flight executes finish on the plan they hold; future
//!    lookups get the refined one. Because both sides carry a
//!    [`VerifiedPlan`] proof for the same structure, responses are
//!    bit-for-bit identical across the swap — refinement is invisible
//!    to tenants except as speed.
//!
//! A wrong classification therefore costs one background compile and
//! probe, never a regression and never a changed answer.
//!
//! The loop is **hysteretic**: [`RefineScheduler`] spaces attempts per
//! plan by [`RefineConfig::hysteresis_ns`] on an injected monotonic
//! clock ([`spmv_parallel::Clock`]), so a plan that keeps measuring
//! slow is retried at a bounded rate and tests can drive the schedule
//! with a [`FakeClock`](spmv_parallel::FakeClock).
//!
//! Every completed A/B also feeds the incremental learner
//! ([`spmv_ml::IncrementalLearner`]): the pair `(Table I features,
//! measured winner)` accumulates, and periodic
//! [`retrain_incremental`](spmv_ml::IncrementalLearner::retrain_incremental)
//! refits the offline rule-set family over measured evidence — gated
//! by the rule-set linter, so a degenerate refit can never replace a
//! serving model.
//!
//! The mode knob is the `SPMV_REFINE` environment variable:
//! `off` (default) does nothing, `observe` classifies and counts but
//! never builds, `auto` runs the full loop.

use crate::cache::CacheError;
use spmv_autotune::{
    classify, suggest, AdaptConfig, Bottleneck, NativeCpuBackend, PlanConfig, SpmvPlan,
    VerifiedPlan,
};
use spmv_sparse::{CsrMatrix, Scalar};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// What the background pass is allowed to do (the `SPMV_REFINE` knob).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum RefineMode {
    /// No background pass at all.
    #[default]
    Off,
    /// Classify and count divergent plans; never compile or swap.
    Observe,
    /// Full loop: classify, build, A/B-probe, swap when faster.
    Auto,
}

impl RefineMode {
    /// Parse `SPMV_REFINE` (`off` | `observe` | `auto`; unset or
    /// unrecognised → `Off`).
    pub fn from_env() -> Self {
        match std::env::var("SPMV_REFINE").as_deref() {
            Ok("observe") => RefineMode::Observe,
            Ok("auto") => RefineMode::Auto,
            _ => RefineMode::Off,
        }
    }
}

/// Refinement knobs. `Default` is fully off; [`RefineConfig::from_env`]
/// reads the `SPMV_REFINE*` variables.
#[derive(Clone, Copy, Debug)]
pub struct RefineConfig {
    /// What the pass may do (see [`RefineMode`]).
    pub mode: RefineMode,
    /// Classifier thresholds, including the observed/predicted
    /// divergence ratio that arms refinement.
    pub adapt: AdaptConfig,
    /// A/B probe repetitions per side (best-of; small, the probe runs
    /// on live hardware).
    pub probe_iters: usize,
    /// The candidate must be at least this factor faster than the
    /// incumbent (best-of probe times) to be published. > 1.0 so
    /// measurement jitter cannot ping-pong plans.
    pub min_speedup: f64,
    /// Minimum nanoseconds between refinement attempts for one plan —
    /// the hysteresis window [`RefineScheduler`] enforces.
    pub hysteresis_ns: u64,
    /// Background worker pass period.
    pub scan_interval: Duration,
    /// Run one incremental retrain after this many new measured
    /// `(features, winner)` observations.
    pub retrain_every: usize,
}

impl Default for RefineConfig {
    fn default() -> Self {
        Self {
            mode: RefineMode::Off,
            adapt: AdaptConfig::default(),
            probe_iters: 3,
            min_speedup: 1.05,
            hysteresis_ns: 1_000_000_000,
            scan_interval: Duration::from_millis(20),
            retrain_every: 8,
        }
    }
}

impl RefineConfig {
    /// Defaults overridden by environment: `SPMV_REFINE` (mode),
    /// `SPMV_REFINE_DIVERGENCE` (observed/predicted ratio, f64),
    /// `SPMV_REFINE_HYSTERESIS_MS` (attempt spacing, integer ms).
    pub fn from_env() -> Self {
        let mut cfg = Self {
            mode: RefineMode::from_env(),
            ..Self::default()
        };
        if let Ok(v) = std::env::var("SPMV_REFINE_DIVERGENCE") {
            if let Ok(x) = v.parse::<f64>() {
                cfg.adapt.divergence_ratio = x;
            }
        }
        if let Ok(v) = std::env::var("SPMV_REFINE_HYSTERESIS_MS") {
            if let Ok(ms) = v.parse::<u64>() {
                cfg.hysteresis_ns = ms.saturating_mul(1_000_000);
            }
        }
        cfg
    }
}

/// Per-plan attempt spacing on an injected monotonic clock. Pure state
/// machine — the caller supplies `now_ns` readings (production: a
/// [`spmv_parallel::MonotonicClock`]; tests: a
/// [`FakeClock`](spmv_parallel::FakeClock)), so hysteresis behaviour is
/// deterministic under test.
#[derive(Debug, Default)]
pub struct RefineScheduler<K: std::hash::Hash + Eq> {
    last_attempt: HashMap<K, u64>,
}

impl<K: std::hash::Hash + Eq + Clone> RefineScheduler<K> {
    /// An empty schedule.
    pub fn new() -> Self {
        Self {
            last_attempt: HashMap::new(),
        }
    }

    /// Whether an attempt for `key` is allowed at `now_ns` given the
    /// spacing `hysteresis_ns` (first attempt is always allowed).
    pub fn ready(&self, key: &K, now_ns: u64, hysteresis_ns: u64) -> bool {
        match self.last_attempt.get(key) {
            None => true,
            Some(&last) => now_ns.saturating_sub(last) >= hysteresis_ns,
        }
    }

    /// Record that an attempt for `key` happened at `now_ns`.
    pub fn record(&mut self, key: &K, now_ns: u64) {
        self.last_attempt.insert(key.clone(), now_ns);
    }

    /// Forget a key (its slot was evicted).
    pub fn forget(&mut self, key: &K) {
        self.last_attempt.remove(key);
    }
}

/// Classify a running plan and derive the candidate configuration that
/// addresses its bottleneck. `(_, None)` means "leave it alone": on
/// model, too few samples, or every relevant knob already at its limit.
pub fn classify_plan<T: Scalar>(
    plan: &VerifiedPlan<T>,
    adapt: &AdaptConfig,
) -> (Bottleneck, Option<PlanConfig>) {
    let snapshot = plan.telemetry().snapshot();
    let traffic = plan.plan().traffic();
    let config = plan.config();
    let bottleneck = classify(
        &snapshot,
        &traffic,
        config,
        plan.plan().features().avg_lines_per_row,
        adapt,
    );
    let suggestion = suggest(bottleneck, config);
    (bottleneck, suggestion)
}

/// Why a probe produced no publishable candidate.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RefineError {
    /// Candidate compile/verify failed.
    Build(String),
    /// Candidate and incumbent disagreed bitwise on the probe input —
    /// must be impossible for two verified plans over one structure;
    /// treated as fatal for the candidate.
    Mismatch(String),
}

impl std::fmt::Display for RefineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RefineError::Build(m) => write!(f, "candidate build failed: {m}"),
            RefineError::Mismatch(m) => write!(f, "candidate output mismatch: {m}"),
        }
    }
}

impl std::error::Error for RefineError {}

/// Outcome of one A/B probe: the verified candidate plus the evidence.
pub struct ProbeReport<T: Scalar> {
    /// The candidate, verified against the live matrix — safe to swap.
    pub candidate: Arc<VerifiedPlan<T>>,
    /// Wall time compiling + verifying the candidate (its rebuild cost
    /// for cache eviction scoring).
    pub build_ns: u64,
    /// Best-of-probe incumbent execute, nanoseconds.
    pub incumbent_ns: u64,
    /// Best-of-probe candidate execute, nanoseconds.
    pub candidate_ns: u64,
    /// `candidate_ns × min_speedup ≤ incumbent_ns`: publish-worthy.
    pub improved: bool,
}

/// Compile, verify, and A/B-probe `candidate_cfg` against the incumbent
/// on the live matrix. Returns the verified candidate and best-of-N
/// timings; every probe pair is checked bit-for-bit. `workers > 0` pins
/// the backend's worker count (0 = backend default), mirroring how the
/// serving layer compiles incumbents.
pub fn probe_candidate<T: Scalar>(
    a: &CsrMatrix<T>,
    incumbent: &VerifiedPlan<T>,
    candidate_cfg: PlanConfig,
    workers: usize,
    cfg: &RefineConfig,
) -> Result<ProbeReport<T>, RefineError> {
    let backend = if workers > 0 {
        NativeCpuBackend::new().with_workers(workers)
    } else {
        NativeCpuBackend::new()
    };
    let strategy = incumbent.plan().strategy().clone();
    let started = std::time::Instant::now();
    let candidate = SpmvPlan::compile_with(a, strategy, Box::new(backend), candidate_cfg)
        .verify(a)
        .map_err(|e| RefineError::Build(e.to_string()))?;
    let build_ns = started.elapsed().as_nanos() as u64;

    // Deterministic probe vector: structured enough to exercise every
    // row, fixed so repeated probes are comparable.
    let x: Vec<T> = (0..a.n_cols())
        .map(|i| T::from_f64(((i * 37 + 11) % 101) as f64 / 50.0 - 1.0))
        .collect();
    let mut y_inc = vec![T::ZERO; a.n_rows()];
    let mut y_cand = vec![T::ZERO; a.n_rows()];
    let iters = cfg.probe_iters.max(1);
    let mut incumbent_ns = u64::MAX;
    let mut candidate_ns = u64::MAX;
    for _ in 0..iters {
        let ci = incumbent
            .execute_unchecked(a, &x, &mut y_inc)
            .map_err(|e| RefineError::Build(e.to_string()))?;
        let cc = candidate
            .execute_unchecked(a, &x, &mut y_cand)
            .map_err(|e| RefineError::Build(e.to_string()))?;
        incumbent_ns = incumbent_ns.min(ci.wall.as_nanos() as u64);
        candidate_ns = candidate_ns.min(cc.wall.as_nanos() as u64);
        if y_inc != y_cand {
            // Two verified plans over one structure must agree bitwise;
            // a mismatch means the candidate is unusable, full stop.
            return Err(RefineError::Mismatch(format!(
                "incumbent and candidate outputs differ on the probe input \
                 (config {candidate_cfg:?})"
            )));
        }
    }
    let improved = (candidate_ns as f64) * cfg.min_speedup <= incumbent_ns as f64;
    Ok(ProbeReport {
        candidate: Arc::new(candidate),
        build_ns,
        incumbent_ns,
        candidate_ns,
        improved,
    })
}

/// The learner schema the refinement loop feeds: the frozen Table I
/// attribute vector against the two-class "which side measured faster"
/// outcome. Keeping the schema here (not in the worker) lets benches
/// and tests build a compatible [`spmv_ml::IncrementalLearner`].
pub fn learner_schema() -> (Vec<spmv_ml::AttrSpec>, Vec<String>) {
    let attrs = spmv_sparse::MatrixFeatures::attr_names(spmv_sparse::FeatureSet::TableI)
        .into_iter()
        .map(spmv_ml::AttrSpec::numeric)
        .collect();
    (attrs, vec!["incumbent".into(), "refined".into()])
}

/// Class index for [`learner_schema`]: the incumbent measured best.
pub const CLASS_INCUMBENT: usize = 0;
/// Class index for [`learner_schema`]: the refined candidate won.
pub const CLASS_REFINED: usize = 1;

/// Project a plan's features onto the frozen Table I row that matches
/// [`learner_schema`] regardless of which feature set the plan was
/// compiled with (extended features would widen `to_vec()`).
pub fn feature_row(f: &spmv_sparse::MatrixFeatures) -> Vec<f64> {
    vec![
        f.m as f64,
        f.n as f64,
        f.nnz as f64,
        f.var_nnz,
        f.avg_nnz,
        f.min_nnz as f64,
        f.max_nnz as f64,
    ]
}

/// Monotone counters for the background pass (lives in the server's
/// shared state; the worker thread increments, `stats()` snapshots).
#[derive(Debug, Default)]
pub struct RefineCounters {
    /// Completed scan passes over the cache.
    pub scans: AtomicU64,
    /// Plans whose classification produced an actionable suggestion.
    pub eligible: AtomicU64,
    /// Eligible plans skipped by the hysteresis window.
    pub hysteresis_skips: AtomicU64,
    /// Eligible plans counted in observe mode (no build).
    pub observed: AtomicU64,
    /// Candidates compiled + verified.
    pub built: AtomicU64,
    /// Candidates published over their incumbent.
    pub swapped: AtomicU64,
    /// Candidates measured and rejected (incumbent kept).
    pub kept: AtomicU64,
    /// Candidate builds or probes that failed.
    pub failures: AtomicU64,
    /// Measured `(features, winner)` pairs fed to the learner.
    pub learner_observations: AtomicU64,
    /// Incremental retrains accepted by the lint gate.
    pub learner_retrains: AtomicU64,
    /// Incremental retrains rejected by the lint gate.
    pub learner_rejections: AtomicU64,
}

/// Snapshot of [`RefineCounters`] (see the field docs there).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RefineStats {
    /// Completed scan passes over the cache.
    pub scans: u64,
    /// Plans whose classification produced an actionable suggestion.
    pub eligible: u64,
    /// Eligible plans skipped by the hysteresis window.
    pub hysteresis_skips: u64,
    /// Eligible plans counted in observe mode (no build).
    pub observed: u64,
    /// Candidates compiled + verified.
    pub built: u64,
    /// Candidates published over their incumbent.
    pub swapped: u64,
    /// Candidates measured and rejected (incumbent kept).
    pub kept: u64,
    /// Candidate builds or probes that failed.
    pub failures: u64,
    /// Measured `(features, winner)` pairs fed to the learner.
    pub learner_observations: u64,
    /// Incremental retrains accepted by the lint gate.
    pub learner_retrains: u64,
    /// Incremental retrains rejected by the lint gate.
    pub learner_rejections: u64,
}

impl RefineCounters {
    /// Relaxed snapshot (exact once the worker quiesces).
    pub fn snapshot(&self) -> RefineStats {
        RefineStats {
            scans: self.scans.load(Ordering::Relaxed),
            eligible: self.eligible.load(Ordering::Relaxed),
            hysteresis_skips: self.hysteresis_skips.load(Ordering::Relaxed),
            observed: self.observed.load(Ordering::Relaxed),
            built: self.built.load(Ordering::Relaxed),
            swapped: self.swapped.load(Ordering::Relaxed),
            kept: self.kept.load(Ordering::Relaxed),
            failures: self.failures.load(Ordering::Relaxed),
            learner_observations: self.learner_observations.load(Ordering::Relaxed),
            learner_retrains: self.learner_retrains.load(Ordering::Relaxed),
            learner_rejections: self.learner_rejections.load(Ordering::Relaxed),
        }
    }
}

/// Map a compile/verify failure into the cache's error type (the
/// refiner builds through the same `Result` plumbing as the server).
pub fn build_error(e: impl std::fmt::Display) -> CacheError {
    CacheError::Build(e.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use spmv_autotune::{BinningScheme, KernelId, Strategy};
    use spmv_sparse::gen;

    fn strategy() -> Strategy {
        Strategy {
            binning: BinningScheme::Coarse { u: 10 },
            kernels: vec![KernelId::Serial; 8],
        }
    }

    fn forced_csr() -> PlanConfig {
        PlanConfig {
            pack: false,
            cache_block: false,
            specialize: false,
            ..PlanConfig::default()
        }
    }

    fn verified(a: &CsrMatrix<f64>, cfg: PlanConfig) -> VerifiedPlan<f64> {
        SpmvPlan::compile_with(a, strategy(), Box::new(NativeCpuBackend::new()), cfg)
            .verify(a)
            .unwrap()
    }

    #[test]
    fn mode_parsing_matches_the_knob() {
        // (Reads the real environment, so only the unset default is
        // asserted here; the string mapping is covered by construction.)
        assert_eq!(RefineMode::default(), RefineMode::Off);
    }

    #[test]
    fn scheduler_hysteresis_is_deterministic_on_a_fake_clock() {
        use spmv_parallel::{Clock, FakeClock};
        let clock = FakeClock::new();
        let mut sched = RefineScheduler::new();
        let key = 7u32;
        let h = 1_000;
        assert!(sched.ready(&key, clock.now_ns(), h), "first attempt free");
        sched.record(&key, clock.now_ns());
        clock.advance_ns(999);
        assert!(!sched.ready(&key, clock.now_ns(), h), "inside the window");
        clock.advance_ns(1);
        assert!(sched.ready(&key, clock.now_ns(), h), "window elapsed");
        sched.record(&key, clock.now_ns());
        clock.advance_ns(10);
        assert!(!sched.ready(&key, clock.now_ns(), h));
        sched.forget(&key);
        assert!(sched.ready(&key, clock.now_ns(), h), "forgotten = fresh");
    }

    #[test]
    fn classify_plan_arms_on_a_forced_csr_banded_matrix() {
        // A banded matrix compiled with every structure gate closed:
        // pays the full u32 index stream it does not need. After enough
        // executes, the classifier must call it memory-bound and
        // suggest re-opening the gates.
        let a = gen::banded::<f64>(2_000, 3, 2);
        let plan = verified(&a, forced_csr());
        let x = vec![1.0; a.n_cols()];
        let mut y = vec![0.0; a.n_rows()];
        for _ in 0..10 {
            plan.execute_unchecked(&a, &x, &mut y).unwrap();
        }
        let (b, suggestion) = classify_plan(&plan, &AdaptConfig::default());
        assert_eq!(b, Bottleneck::MemoryBound);
        let s = suggestion.expect("gates closed ⇒ headroom");
        assert!(s.pack && s.specialize);
    }

    #[test]
    fn classify_plan_respects_the_sample_floor() {
        let a = gen::banded::<f64>(2_000, 3, 2);
        let plan = verified(&a, forced_csr());
        // No executes at all: no verdict, no suggestion.
        let (b, suggestion) = classify_plan(&plan, &AdaptConfig::default());
        assert_eq!(b, Bottleneck::OnModel);
        assert!(suggestion.is_none());
    }

    #[test]
    fn probe_reports_bitwise_equal_sides_and_timings() {
        let a = gen::banded::<f64>(3_000, 3, 2);
        let incumbent = verified(&a, forced_csr());
        let report = probe_candidate(
            &a,
            &incumbent,
            PlanConfig::default(),
            0,
            &RefineConfig::default(),
        )
        .expect("candidate must build and agree");
        assert!(report.incumbent_ns > 0 && report.incumbent_ns < u64::MAX);
        assert!(report.candidate_ns > 0 && report.candidate_ns < u64::MAX);
        assert!(report.build_ns > 0);
        // The candidate's config really is the suggested one.
        assert!(report.candidate.config().pack);
    }
}
