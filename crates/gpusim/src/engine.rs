//! The pricing engine: turns a launch trace into cycles and seconds.
//!
//! The model is deliberately simple, explicit, and documented — every term
//! corresponds to one architectural effect the paper's evaluation hinges
//! on:
//!
//! ```text
//! wave_issue   = alu + transactions·tx_issue + lds_ops·lds_cost + barriers·barrier_cost
//! wave_latency = mem_rounds · mem_latency / occupancy        (latency hiding)
//! wave_cycles  = wave_issue + wave_latency
//! cu_cycles    = Σ (waves assigned to CU) / simd_per_cu      (throughput view)
//! kernel       = max( max_cu cu_cycles , total_bytes / BW )  (DRAM roofline)
//!                + launch_overhead
//! ```
//!
//! Work-groups are assigned to compute units greedily (least-loaded
//! first, deterministic order), which models the hardware's global
//! work-group dispatcher well enough for load-balance effects to show.

use crate::device::GpuDevice;
use crate::trace::{LaunchTracer, WorkgroupCost};

/// Priced result of one kernel launch.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct LaunchStats {
    /// Total modelled cycles, including launch overhead.
    pub cycles: f64,
    /// `cycles` at the device clock.
    pub seconds: f64,
    /// Work-groups launched.
    pub workgroups: usize,
    /// Wavefronts launched.
    pub waves: usize,
    /// Vector ALU instructions.
    pub alu: u64,
    /// Memory transactions after coalescing.
    pub transactions: u64,
    /// Bytes read from DRAM (line-granular).
    pub bytes_read: u64,
    /// Bytes written to DRAM (line-granular).
    pub bytes_written: u64,
    /// LDS operations.
    pub lds_ops: u64,
    /// Barriers executed.
    pub barriers: u64,
    /// Wavefronts resident per SIMD used for latency hiding.
    pub occupancy: f64,
    /// Whether the DRAM roofline (rather than compute/latency) set the
    /// kernel time.
    pub bandwidth_bound: bool,
}

impl LaunchStats {
    /// Merge stats of several launches executed back-to-back (e.g. one
    /// launch per bin): cycles and counters add up.
    pub fn accumulate(&mut self, other: &LaunchStats) {
        self.cycles += other.cycles;
        self.seconds += other.seconds;
        self.workgroups += other.workgroups;
        self.waves += other.waves;
        self.alu += other.alu;
        self.transactions += other.transactions;
        self.bytes_read += other.bytes_read;
        self.bytes_written += other.bytes_written;
        self.lds_ops += other.lds_ops;
        self.barriers += other.barriers;
        self.bandwidth_bound |= other.bandwidth_bound;
        // Occupancy of the combination is the wave-weighted mean.
        if self.waves > 0 {
            let w_new = other.waves as f64;
            let w_old = (self.waves - other.waves) as f64;
            if w_old + w_new > 0.0 {
                self.occupancy =
                    (self.occupancy * w_old + other.occupancy * w_new) / (w_old + w_new);
            }
        }
    }

    /// Effective achieved bandwidth in GB/s (useful in reports).
    pub fn achieved_gbps(&self) -> f64 {
        if self.seconds <= 0.0 {
            return 0.0;
        }
        (self.bytes_read + self.bytes_written) as f64 / self.seconds / 1e9
    }

    /// Remove `matrix_bytes` of modelled matrix-stream traffic from this
    /// priced launch — the discount behind every format tier that moves
    /// fewer index bytes than the functional CSR pricing charged
    /// (delta-compressed SELL slabs, structure-specialized traversals)
    /// and behind the non-leading columns of a register-blocked RHS
    /// block. Bytes and transactions scale by the kept fraction;
    /// cycles/seconds scale only when the launch was bandwidth-bound
    /// (compute-bound kernels do not run faster for moving fewer bytes).
    /// The keep fraction is floored at 1% so a launch never becomes free
    /// (output writes and `x`-gathers always remain).
    pub fn discount_traffic(&mut self, matrix_bytes: f64) {
        let traffic = (self.bytes_read + self.bytes_written) as f64;
        if traffic <= 0.0 {
            return;
        }
        let keep = ((traffic - matrix_bytes).max(0.0) / traffic).max(0.01);
        self.bytes_read = ((self.bytes_read as f64) * keep) as u64;
        self.transactions = ((self.transactions as f64) * keep) as u64;
        if self.bandwidth_bound {
            self.cycles *= keep;
            self.seconds *= keep;
        }
    }
}

/// Price a finished launch trace.
pub fn price(tracer: LaunchTracer<'_>) -> LaunchStats {
    let (device, workgroups) = tracer.into_parts();
    price_workgroups(device, &workgroups)
}

/// Price a slice of work-group costs on a device (the form used when
/// work-group traces were produced in parallel).
pub fn price_workgroups(device: &GpuDevice, workgroups: &[WorkgroupCost]) -> LaunchStats {
    let mut stats = LaunchStats {
        workgroups: workgroups.len(),
        ..Default::default()
    };

    let total_waves: usize = workgroups.iter().map(|wg| wg.waves.len()).sum();
    stats.waves = total_waves;

    let occupancy = occupancy(device, workgroups, total_waves);
    stats.occupancy = occupancy;

    // Per-work-group issue+latency cycles, summed over its waves (the
    // throughput view: a CU's SIMDs retire the waves' instruction streams).
    let mut cu_load = vec![0.0f64; device.cus];
    for wg in workgroups {
        let mut wg_cycles = 0.0;
        for w in &wg.waves {
            stats.alu += w.alu;
            stats.transactions += w.transactions;
            stats.bytes_read += w.bytes_read;
            stats.bytes_written += w.bytes_written;
            stats.lds_ops += w.lds_ops;
            stats.barriers += w.barriers;
            let issue = w.alu as f64
                + w.transactions as f64 * device.tx_issue_cycles as f64
                + w.lds_ops as f64 * device.lds_op_cycles as f64
                + w.barriers as f64 * device.barrier_cycles as f64;
            let latency = w.mem_rounds as f64 * device.mem_latency_cycles as f64 / occupancy;
            wg_cycles += issue + latency;
        }
        // Greedy least-loaded CU assignment.
        let cu = cu_load
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .map(|(i, _)| i)
            .unwrap_or(0);
        cu_load[cu] += wg_cycles / device.simd_per_cu as f64;
    }

    let compute_cycles = cu_load.iter().fold(0.0f64, |m, &c| m.max(c));
    let bw_cycles = (stats.bytes_read + stats.bytes_written) as f64 / device.bytes_per_cycle();
    stats.bandwidth_bound = bw_cycles > compute_cycles;
    stats.cycles = compute_cycles.max(bw_cycles) + device.launch_overhead_cycles as f64;
    stats.seconds = device.cycles_to_seconds(stats.cycles);
    stats
}

/// Wavefronts resident per SIMD, bounded by the hardware cap, the LDS
/// budget, and the amount of work actually launched.
fn occupancy(device: &GpuDevice, workgroups: &[WorkgroupCost], total_waves: usize) -> f64 {
    if total_waves == 0 {
        return 1.0;
    }
    let simds = (device.cus * device.simd_per_cu) as f64;
    let work_limited = (total_waves as f64 / simds).max(1.0);
    // LDS bound: how many work-groups fit per CU.
    let max_lds = workgroups.iter().map(|wg| wg.lds_bytes).max().unwrap_or(0);
    let lds_limited = match device.lds_per_cu.checked_div(max_lds) {
        None => device.max_waves_per_simd as f64,
        Some(q) => {
            let wgs_per_cu = q.max(1);
            let avg_waves_per_wg = total_waves as f64 / workgroups.len() as f64;
            ((wgs_per_cu as f64 * avg_waves_per_wg) / device.simd_per_cu as f64).max(1.0)
        }
    };
    work_limited
        .min(lds_limited)
        .min(device.max_waves_per_simd as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::WaveCost;
    use crate::Region;

    fn device() -> GpuDevice {
        GpuDevice::kaveri()
    }

    fn wg_with_waves(device: &GpuDevice, n_waves: usize, cost: WaveCost) -> WorkgroupCost {
        let lt = LaunchTracer::new(device);
        let mut wg = lt.workgroup(0);
        for _ in 0..n_waves {
            wg.push_wave(cost);
        }
        wg.finish()
    }

    #[test]
    fn empty_launch_costs_only_the_dispatch() {
        let d = device();
        let s = price(LaunchTracer::new(&d));
        assert_eq!(s.cycles, d.launch_overhead_cycles as f64);
        assert_eq!(s.workgroups, 0);
        assert!(!s.bandwidth_bound);
    }

    #[test]
    fn more_transactions_cost_more() {
        let d = device();
        let cheap = wg_with_waves(
            &d,
            4,
            WaveCost {
                transactions: 10,
                ..Default::default()
            },
        );
        let dear = wg_with_waves(
            &d,
            4,
            WaveCost {
                transactions: 1000,
                ..Default::default()
            },
        );
        let a = price_workgroups(&d, &[cheap]);
        let b = price_workgroups(&d, &[dear]);
        assert!(b.cycles > a.cycles);
    }

    #[test]
    fn workgroups_spread_across_cus() {
        let d = device();
        let unit = wg_with_waves(
            &d,
            4,
            WaveCost {
                alu: 100_000,
                ..Default::default()
            },
        );
        let one = price_workgroups(&d, &vec![unit.clone(); 1]);
        let eight = price_workgroups(&d, &vec![unit.clone(); 8]);
        let nine = price_workgroups(&d, &vec![unit.clone(); 9]);
        // 8 CUs: eight identical work-groups take the same compute time
        // as one; nine take two rounds on some CU.
        let base = one.cycles - d.launch_overhead_cycles as f64;
        let c8 = eight.cycles - d.launch_overhead_cycles as f64;
        let c9 = nine.cycles - d.launch_overhead_cycles as f64;
        assert!((c8 - base).abs() < 1e-6);
        assert!((c9 - 2.0 * base).abs() < 1e-6);
    }

    #[test]
    fn bandwidth_roofline_floors_time() {
        let d = device();
        // One wave reading a gigabyte with trivial compute.
        let wg = wg_with_waves(
            &d,
            1,
            WaveCost {
                bytes_read: 1 << 30,
                transactions: 1,
                ..Default::default()
            },
        );
        let s = price_workgroups(&d, &[wg]);
        assert!(s.bandwidth_bound);
        let floor = (1u64 << 30) as f64 / d.bytes_per_cycle();
        assert!(s.cycles >= floor);
    }

    #[test]
    fn occupancy_hides_latency() {
        let d = device();
        let wave = WaveCost {
            mem_rounds: 100,
            ..Default::default()
        };
        // Few waves: latency exposed. Many waves: hidden by occupancy,
        // so per-wave cost drops even though total work grows.
        let few = price_workgroups(&d, &[wg_with_waves(&d, 1, wave)]);
        let lots = price_workgroups(&d, &vec![wg_with_waves(&d, 4, wave); 64]);
        let few_per_wave = few.cycles - d.launch_overhead_cycles as f64;
        // 256 waves over 8 CUs of 4 SIMDs = 8 waves/SIMD occupancy: the
        // per-wave cost must drop well below the single exposed wave's.
        let lots_compute = lots.cycles - d.launch_overhead_cycles as f64;
        let lots_per_wave = lots_compute / 256.0;
        assert!(lots.occupancy > 4.0);
        assert!(
            lots_per_wave < few_per_wave / 4.0,
            "per-wave {lots_per_wave} vs exposed {few_per_wave}"
        );
    }

    #[test]
    fn lds_usage_limits_occupancy() {
        let d = device();
        let wave = WaveCost {
            mem_rounds: 10,
            ..Default::default()
        };
        let mk = |lds: usize| {
            let lt = LaunchTracer::new(&d);
            let mut wgs = Vec::new();
            for _ in 0..64 {
                let mut wg = lt.workgroup(lds);
                for _ in 0..4 {
                    wg.push_wave(wave);
                }
                wgs.push(wg.finish());
            }
            price_workgroups(&d, &wgs)
        };
        let small = mk(1024); // 64 WGs/CU fit: occupancy capped by work
        let huge = mk(32 * 1024); // 2 WGs/CU fit: occupancy 2
        assert!(huge.occupancy < small.occupancy);
        assert!(huge.cycles > small.cycles);
    }

    #[test]
    fn accumulate_adds_launches() {
        let d = device();
        let wg = wg_with_waves(
            &d,
            4,
            WaveCost {
                alu: 10,
                transactions: 5,
                bytes_read: 320,
                ..Default::default()
            },
        );
        let one = price_workgroups(&d, std::slice::from_ref(&wg));
        let mut two = one.clone();
        two.accumulate(&one);
        assert_eq!(two.cycles, 2.0 * one.cycles);
        assert_eq!(two.transactions, 2 * one.transactions);
        assert_eq!(two.workgroups, 2);
    }

    #[test]
    fn pricing_is_deterministic() {
        let d = device();
        let mut wgs = Vec::new();
        for i in 0..20 {
            let lt = LaunchTracer::new(&d);
            let mut wg = lt.workgroup(i * 100);
            let mut w = wg.wave();
            w.alu(i as u64 * 17);
            w.read_contiguous(Region::Val, i, 64, 4);
            wg.push_wave(w.finish());
            wgs.push(wg.finish());
        }
        let a = price_workgroups(&d, &wgs);
        let b = price_workgroups(&d, &wgs);
        assert_eq!(a, b);
    }
}
