//! Integration suite for the plan/execute split: one compiled
//! [`SpmvPlan`] reused across value updates, structural-change safety,
//! and cross-backend agreement (sim-GPU vs native-CPU) over the whole
//! kernel pool.

use spmv_autotune::prelude::*;
use spmv_gpusim::GpuDevice;
use spmv_sparse::gen;
use spmv_sparse::gen::mixture::RowRegime;
use spmv_sparse::scalar::approx_eq;
use spmv_sparse::CsrMatrix;

fn irregular(seed: u64) -> CsrMatrix<f64> {
    gen::mixture(
        1_800,
        2_400,
        &[
            RowRegime::new(1, 3, 0.55),
            RowRegime::new(10, 60, 0.35),
            RowRegime::new(300, 600, 0.10),
        ],
        true,
        seed,
    )
}

fn small_auto() -> AutoSpmv {
    AutoSpmv::with_tuner(Tuner::with_config(
        GpuDevice::kaveri(),
        TunerConfig {
            granularities: vec![10, 100, 1_000],
            kernels: ALL_KERNELS.to_vec(),
            include_single_bin: true,
        },
    ))
}

fn assert_matches_reference(a: &CsrMatrix<f64>, u: &[f64], reference: &[f64]) {
    for i in 0..a.n_rows() {
        assert!(
            approx_eq(u[i], reference[i], a.row_nnz(i).max(1)),
            "row {i}: {} vs reference {}",
            u[i],
            reference[i]
        );
    }
}

/// One plan, many value updates: as long as the sparsity pattern is
/// unchanged, `execute` must track the matrix's *current* values and
/// match the sequential reference every time — on both backends.
#[test]
fn plan_reuse_tracks_value_updates() {
    let auto = small_auto();
    for native in [false, true] {
        let mut a = irregular(41);
        let plan = if native {
            auto.plan_native(&a)
        } else {
            auto.plan(&a)
        };
        let v: Vec<f64> = (0..a.n_cols()).map(|i| ((i % 7) as f64) - 3.0).collect();
        let mut u = vec![0.0f64; a.n_rows()];
        for round in 0..4u64 {
            // Same pattern, new values (e.g. a Jacobian refresh).
            a.fill_values_with(|k| ((k as u64).wrapping_mul(round + 1) % 11) as f64 - 5.0);
            let reference = a.spmv_seq_alloc(&v).unwrap();
            plan.execute(&a, &v, &mut u)
                .unwrap_or_else(|e| panic!("{} round {round}: {e}", plan.backend_name()));
            assert_matches_reference(&a, &u, &reference);
        }
    }
}

/// A structurally different matrix must be rejected with a typed error —
/// never silently computed with stale bins.
#[test]
fn pattern_mismatch_is_rejected_not_miscomputed() {
    let auto = small_auto();
    let a = irregular(42);
    let plan = auto.plan(&a);

    // Same shape and nnz budget, different pattern.
    let b = irregular(43);
    let v = vec![1.0f64; b.n_cols()];
    let sentinel = -7.5f64;
    let mut u = vec![sentinel; b.n_rows()];
    match plan.execute(&b, &v, &mut u) {
        Err(PlanError::PatternMismatch { expected, got }) => {
            assert_eq!(expected, *plan.fingerprint());
            assert_eq!(got, PatternFingerprint::of(&b));
        }
        other => panic!("expected PatternMismatch, got {other:?}"),
    }
    // The mismatch must be detected before any rows are written.
    assert!(
        u.iter().all(|&x| x == sentinel),
        "output written despite pattern mismatch"
    );

    // Wrong operand lengths are also typed errors.
    let mut short_u = vec![0.0f64; a.n_rows() - 1];
    assert!(matches!(
        plan.execute(&a, &v[..a.n_cols()], &mut short_u),
        Err(PlanError::DimensionMismatch { .. })
    ));
}

/// The two backends are interchangeable: for every kernel in the pool,
/// a single-kernel plan on the sim-GPU and on the native CPU agree with
/// the sequential reference (and hence with each other).
#[test]
fn backends_agree_on_every_kernel() {
    let a = irregular(44);
    let v: Vec<f64> = (0..a.n_cols())
        .map(|i| ((i % 13) as f64) * 0.25 - 1.5)
        .collect();
    let reference = a.spmv_seq_alloc(&v).unwrap();
    for kernel in ALL_KERNELS {
        let strategy = Strategy::single_kernel(kernel);
        let sim_plan = SpmvPlan::compile(
            &a,
            strategy.clone(),
            Box::new(SimGpuBackend::new(GpuDevice::kaveri())),
        );
        let cpu_plan = SpmvPlan::compile(&a, strategy, Box::new(NativeCpuBackend::new()));
        let mut u_sim = vec![0.0f64; a.n_rows()];
        let mut u_cpu = vec![0.0f64; a.n_rows()];
        let sim_cost = sim_plan.execute(&a, &v, &mut u_sim).unwrap();
        let cpu_cost = cpu_plan.execute(&a, &v, &mut u_cpu).unwrap();
        assert_matches_reference(&a, &u_sim, &reference);
        assert_matches_reference(&a, &u_cpu, &reference);
        // Different clocks: the sim prices cycles, the CPU only wall time.
        assert!(sim_cost.stats.is_some(), "{kernel}: sim launch unpriced");
        assert!(cpu_cost.stats.is_none(), "{kernel}: cpu launch priced");
    }
}

/// A tuned (multi-bin) strategy also agrees across backends, not just
/// single-kernel plans.
#[test]
fn tuned_plans_agree_across_backends() {
    let auto = small_auto();
    let a = irregular(45);
    let v: Vec<f64> = (0..a.n_cols()).map(|i| ((i * 3) % 17) as f64).collect();
    let reference = a.spmv_seq_alloc(&v).unwrap();
    let sim_plan = auto.plan(&a);
    let cpu_plan = auto.plan_native(&a);
    assert_eq!(sim_plan.strategy(), cpu_plan.strategy());
    assert_eq!(sim_plan.launches(), cpu_plan.launches());
    let mut u = vec![0.0f64; a.n_rows()];
    sim_plan.execute(&a, &v, &mut u).unwrap();
    assert_matches_reference(&a, &u, &reference);
    u.fill(0.0);
    cpu_plan.execute(&a, &v, &mut u).unwrap();
    assert_matches_reference(&a, &u, &reference);
}
