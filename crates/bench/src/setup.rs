//! Shared experiment setup: suite loading, model training, env knobs.

use spmv_autotune::model_io::{load_model_file, save_model_file};
use spmv_autotune::prelude::*;
use spmv_autotune::training::TrainerConfig;
use spmv_sparse::corpus::CorpusConfig;
use spmv_sparse::suite::{suite, SuiteMatrix};
use spmv_sparse::CsrMatrix;
use std::path::PathBuf;

/// Read a `usize` knob from the environment with a default.
pub fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

/// The thread sweep every throughput report runs: powers of two up to
/// the process thread cap, plus the cap itself — `{1, 2, 4, …, N}`.
/// Scaling efficiency at each point is measured against the 1-thread
/// entry, which is always present.
pub fn sweep_threads() -> Vec<usize> {
    let cap = spmv_parallel::num_threads().max(1);
    let mut sweep = Vec::new();
    let mut t = 1usize;
    while t < cap {
        sweep.push(t);
        t *= 2;
    }
    sweep.push(cap);
    sweep
}

/// `gflops(t) / (t · gflops(1))`: the fraction of perfect linear scaling
/// a multi-thread point achieves. 0 when the baseline is degenerate.
pub fn scaling_efficiency(threads: usize, gflops: f64, gflops_1: f64) -> f64 {
    if gflops_1 <= 0.0 || threads == 0 {
        return 0.0;
    }
    gflops / (threads as f64 * gflops_1)
}

/// A generated suite matrix with its metadata.
pub struct SuiteCase {
    /// Table II metadata.
    pub meta: SuiteMatrix,
    /// The generated analogue.
    pub matrix: CsrMatrix<f32>,
}

/// Generate all 16 Table II analogues (prints progress — generation of
/// the largest entries takes a few seconds).
pub fn load_suite() -> Vec<SuiteCase> {
    suite()
        .into_iter()
        .map(|meta| {
            eprintln!("  generating {} …", meta.name);
            let matrix = meta.generate();
            SuiteCase { meta, matrix }
        })
        .collect()
}

fn model_cache_path() -> PathBuf {
    std::env::var("SPMV_MODEL_CACHE")
        .map(PathBuf::from)
        .unwrap_or_else(|_| PathBuf::from("target/spmv-model.txt"))
}

/// Train (or load from the on-disk cache) the two-stage model used by
/// the prediction-driven experiments. `SPMV_CORPUS_COUNT` overrides the
/// corpus size; the cache lives at `SPMV_MODEL_CACHE`
/// (default `target/spmv-model.txt`) and is keyed implicitly by being
/// deleted when you want a retrain. Returns the training report only
/// when training actually ran.
pub fn train_or_load_model(device: &GpuDevice) -> (TrainedModel, Option<TrainingReport>) {
    let path = model_cache_path();
    if path.exists() {
        match load_model_file(&path) {
            Ok(m) => {
                eprintln!("loaded cached model from {}", path.display());
                return (m, None);
            }
            Err(e) => eprintln!("cache at {} unreadable ({e}); retraining", path.display()),
        }
    }
    let count = env_usize("SPMV_CORPUS_COUNT", 300);
    let config = TrainerConfig {
        corpus: CorpusConfig {
            count,
            min_rows: 500,
            max_rows: 4_000,
            seed: 0x5eed_c0de,
        },
        ..Default::default()
    };
    eprintln!("training two-stage model on {count} corpus matrices …");
    let t0 = std::time::Instant::now();
    let (model, report) = Trainer::with_config(device.clone(), config).train();
    eprintln!("  trained in {:.1?}", t0.elapsed());
    if let Some(dir) = path.parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    match save_model_file(&model, &path) {
        Ok(()) => eprintln!("  cached model at {}", path.display()),
        Err(e) => eprintln!("  could not cache model: {e}"),
    }
    (model, Some(report))
}

/// Back-compat alias used by binaries that always want a report: trains
/// fresh when the cache was hit but no report is available.
pub fn train_default_model(device: &GpuDevice) -> (TrainedModel, TrainingReport) {
    match train_or_load_model(device) {
        (m, Some(r)) => (m, r),
        (m, None) => {
            // Cache hit: synthesise an empty-ish report by re-evaluating
            // is wasteful; instead tell the caller to delete the cache.
            eprintln!(
                "note: model came from cache; error rates below reflect a fresh quick training"
            );
            drop(m);
            let _ = std::fs::remove_file(model_cache_path());
            match train_or_load_model(device) {
                (m, Some(r)) => (m, r),
                _ => unreachable!("training after cache removal yields a report"),
            }
        }
    }
}
