//! Persistence for the trained two-stage model.
//!
//! The paper's pipeline trains offline and ships classifiers to the
//! runtime; this module stores a [`TrainedModel`] as a single text file
//! (both rule-sets via `spmv-ml`'s C5.0-style text format, plus the
//! granularity class table), so `mlerr`-style training runs can be
//! reused by later processes without retraining.

use crate::kernels::ALL_KERNELS;
use crate::training::TrainedModel;
use spmv_ml::io::{read_ruleset, write_ruleset, RulesIoError};
use spmv_ml::lint::{errors, lint_ruleset, Finding, LintOptions};
use spmv_ml::RuleSet;
use spmv_sparse::FeatureSet;
use std::io::{BufRead, BufReader, Read, Write};
use std::path::Path;

/// Lint both stages of a model against the class universes the runtime
/// will actually index: stage 1 must stay inside the granularity grid,
/// stage 2 inside the nine-kernel pool (`KernelId::from_index` would
/// panic past it). Returns every finding; `Error`-severity ones make
/// [`load_model`] fail.
pub fn lint_model_rulesets(stage1: &RuleSet, stage2: &RuleSet, n_u_classes: usize) -> Vec<Finding> {
    let mut findings = lint_ruleset(
        stage1,
        &LintOptions {
            class_limit: Some(n_u_classes),
            ..Default::default()
        },
    );
    findings.extend(lint_ruleset(
        stage2,
        &LintOptions {
            class_limit: Some(ALL_KERNELS.len()),
            ..Default::default()
        },
    ));
    findings
}

/// Save a trained model to a writer.
///
/// Layout:
/// ```text
/// spmv-model v1
/// features <TableI|Extended>
/// u-classes <u0> <u1> …
/// <stage-1 rule-set>
/// <stage-2 rule-set>
/// ```
pub fn save_model<W: Write>(model: &TrainedModel, mut w: W) -> Result<(), RulesIoError> {
    writeln!(w, "spmv-model v1")?;
    let fs = match model.features {
        FeatureSet::TableI => "TableI",
        FeatureSet::Extended => "Extended",
    };
    writeln!(w, "features {fs}")?;
    let us: Vec<String> = model.u_classes.iter().map(|u| u.to_string()).collect();
    writeln!(w, "u-classes {}", us.join(" "))?;
    write_ruleset(&model.stage1, &mut w)?;
    write_ruleset(&model.stage2, &mut w)?;
    Ok(())
}

/// Save to a file path.
pub fn save_model_file(model: &TrainedModel, path: &Path) -> Result<(), RulesIoError> {
    save_model(model, std::fs::File::create(path)?)
}

/// Load a model previously written by [`save_model`].
pub fn load_model<R: Read>(r: R) -> Result<TrainedModel, RulesIoError> {
    let mut reader = BufReader::new(r);
    let mut line = String::new();
    let mut lineno = 0usize;
    let mut read_line =
        |reader: &mut BufReader<R>, line: &mut String| -> Result<(), RulesIoError> {
            line.clear();
            lineno += 1;
            if reader.read_line(line)? == 0 {
                return Err(RulesIoError::Parse(lineno, "unexpected end of file".into()));
            }
            Ok(())
        };
    read_line(&mut reader, &mut line)?;
    if line.trim() != "spmv-model v1" {
        return Err(RulesIoError::Parse(
            1,
            format!("bad header '{}'", line.trim()),
        ));
    }
    read_line(&mut reader, &mut line)?;
    let features = match line.trim().strip_prefix("features ") {
        Some("TableI") => FeatureSet::TableI,
        Some("Extended") => FeatureSet::Extended,
        other => {
            return Err(RulesIoError::Parse(
                2,
                format!("bad features line {other:?}"),
            ));
        }
    };
    read_line(&mut reader, &mut line)?;
    let u_classes: Vec<usize> = line
        .trim()
        .strip_prefix("u-classes ")
        .ok_or_else(|| RulesIoError::Parse(3, "bad u-classes line".into()))?
        .split_whitespace()
        .map(|t| t.parse::<usize>())
        .collect::<Result<_, _>>()
        .map_err(|e| RulesIoError::Parse(3, format!("bad granularity: {e}")))?;
    if u_classes.is_empty() {
        return Err(RulesIoError::Parse(3, "no granularity classes".into()));
    }
    // The remaining bytes hold two rule-sets back to back. Collect the
    // rest and split on the second "ruleset v1" header.
    let mut rest = String::new();
    reader.read_to_string(&mut rest)?;
    let second = rest[1..]
        .find("ruleset v1")
        .map(|i| i + 1)
        .ok_or_else(|| RulesIoError::Parse(4, "missing stage-2 rule-set".into()))?;
    let stage1 = read_ruleset(&rest.as_bytes()[..second])?;
    let stage2 = read_ruleset(&rest.as_bytes()[second..])?;
    if stage1.n_classes() != u_classes.len() {
        return Err(RulesIoError::Parse(
            4,
            format!(
                "stage-1 classes ({}) disagree with u-classes ({})",
                stage1.n_classes(),
                u_classes.len()
            ),
        ));
    }
    // Static lint: a corrupt or stale model must fail here, at load
    // time, not mispredict (or panic in `KernelId::from_index`) at
    // dispatch time.
    let fatal = errors(&lint_model_rulesets(&stage1, &stage2, u_classes.len()));
    if !fatal.is_empty() {
        return Err(RulesIoError::Lint(fatal));
    }
    Ok(TrainedModel {
        stage1,
        stage2,
        u_classes,
        features,
    })
}

/// Load from a file path.
pub fn load_model_file(path: &Path) -> Result<TrainedModel, RulesIoError> {
    load_model(std::fs::File::open(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::training::{Trainer, TrainerConfig};
    use crate::tuner::TunerConfig;
    use spmv_gpusim::GpuDevice;
    use spmv_sparse::corpus::CorpusConfig;
    use spmv_sparse::{gen, MatrixFeatures};

    fn tiny_model() -> TrainedModel {
        let config = TrainerConfig {
            corpus: CorpusConfig {
                count: 25,
                min_rows: 300,
                max_rows: 900,
                seed: 8,
            },
            tuner: TunerConfig {
                granularities: vec![10, 100, 1000],
                ..TunerConfig::training()
            },
            ..Default::default()
        };
        Trainer::with_config(GpuDevice::kaveri(), config).train().0
    }

    #[test]
    fn roundtrip_preserves_predictions() {
        let model = tiny_model();
        let mut buf = Vec::new();
        save_model(&model, &mut buf).unwrap();
        let loaded = load_model(&buf[..]).unwrap();
        assert_eq!(loaded.u_classes, model.u_classes);
        assert_eq!(loaded.features, model.features);
        for seed in 0..8u64 {
            let a = gen::random_uniform::<f32>(600, 600, 1, (seed as usize % 40) + 1, seed);
            let f = MatrixFeatures::extract(&a, model.features);
            assert_eq!(loaded.predict_u(&f), model.predict_u(&f), "seed {seed}");
            assert_eq!(
                loaded.predict_strategy(&a),
                model.predict_strategy(&a),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn out_of_range_kernel_class_fails_lint_at_load() {
        // Stage 2 declares 12 classes and predicts class 10 — parses
        // fine, but the kernel pool only has 9 entries, so dispatch
        // would panic. Lint must refuse the load.
        let text = "spmv-model v1\nfeatures TableI\nu-classes 10 100\n\
                    ruleset v1\nclasses 2\nattrs m n nnz\ndefault 0\nrule 1 0.9 gt:0:5\nend\n\
                    ruleset v1\nclasses 12\nattrs m n nnz u bin\ndefault 0\n\
                    rule 10 0.9 gt:0:5\nend\n";
        match load_model(text.as_bytes()) {
            Err(RulesIoError::Lint(findings)) => {
                assert!(findings.iter().any(|f| matches!(
                    f,
                    Finding::ClassOutOfRange {
                        class: 10,
                        limit: 9,
                        ..
                    }
                )));
            }
            Err(other) => panic!("expected Lint error, got {other:?}"),
            Ok(_) => panic!("corrupt model loaded"),
        }
    }

    #[test]
    fn nan_threshold_fails_lint_at_load() {
        let text = "spmv-model v1\nfeatures TableI\nu-classes 10 100\n\
                    ruleset v1\nclasses 2\nattrs m n nnz\ndefault 0\n\
                    rule 1 0.9 le:0:NaN\nend\n\
                    ruleset v1\nclasses 9\nattrs m n nnz u bin\ndefault 0\nend\n";
        match load_model(text.as_bytes()) {
            Err(RulesIoError::Lint(findings)) => {
                assert!(findings
                    .iter()
                    .any(|f| matches!(f, Finding::NonFiniteThreshold { .. })));
            }
            Err(other) => panic!("expected Lint error, got {other:?}"),
            Ok(_) => panic!("corrupt model loaded"),
        }
    }

    #[test]
    fn rejects_garbage() {
        assert!(load_model("nope".as_bytes()).is_err());
        assert!(load_model("spmv-model v1\nfeatures Bogus\n".as_bytes()).is_err());
        assert!(load_model("spmv-model v1\nfeatures TableI\nu-classes\n".as_bytes()).is_err());
    }

    #[test]
    fn file_roundtrip() {
        let model = tiny_model();
        let dir = std::env::temp_dir().join("spmv_model_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.txt");
        save_model_file(&model, &path).unwrap();
        let loaded = load_model_file(&path).unwrap();
        assert_eq!(loaded.u_classes, model.u_classes);
    }
}
