//! Property tests of the scheduling substrate: every index visited
//! exactly once, partitions exact, reductions independent of grain.
//! Randomised sizes come from a seeded generator for reproducibility.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use spmv_parallel::{chunk_ranges, parallel_for, parallel_map_collect, parallel_reduce, Chunk};
use std::sync::atomic::{AtomicUsize, Ordering};

const CASES: usize = 64;

#[test]
fn chunks_partition_exactly() {
    let mut rng = StdRng::seed_from_u64(0x5C01);
    for _ in 0..CASES {
        let n = rng.gen_range(0usize..10_000);
        let parts = rng.gen_range(0usize..64);
        let chunks = chunk_ranges(n, parts);
        let mut cursor = 0usize;
        for c in &chunks {
            assert_eq!(c.start, cursor);
            assert!(c.end > c.start);
            cursor = c.end;
        }
        assert_eq!(cursor, if parts == 0 { 0 } else { n });
        if n > 0 && parts > 0 {
            let min = chunks.iter().map(Chunk::len).min().unwrap();
            let max = chunks.iter().map(Chunk::len).max().unwrap();
            assert!(max - min <= 1);
        }
    }
}

#[test]
fn parallel_for_visits_each_index_once() {
    let mut rng = StdRng::seed_from_u64(0x5C02);
    for _ in 0..CASES {
        let n = rng.gen_range(0usize..5_000);
        let grain = rng.gen_range(1usize..512);
        let hits: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
        parallel_for(n, grain, |s, e| {
            for h in &hits[s..e] {
                h.fetch_add(1, Ordering::Relaxed);
            }
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }
}

#[test]
fn map_collect_is_order_preserving() {
    let mut rng = StdRng::seed_from_u64(0x5C03);
    for _ in 0..CASES {
        let n = rng.gen_range(0usize..3_000);
        let grain = rng.gen_range(1usize..256);
        let v = parallel_map_collect(n, grain, |i| i * 3 + 1);
        assert_eq!(v.len(), n);
        for (i, &x) in v.iter().enumerate() {
            assert_eq!(x, i * 3 + 1);
        }
    }
}

#[test]
fn reduce_is_grain_invariant() {
    let mut rng = StdRng::seed_from_u64(0x5C04);
    for _ in 0..CASES {
        let n = rng.gen_range(0usize..4_000);
        let g1 = rng.gen_range(1usize..300);
        let g2 = rng.gen_range(1usize..300);
        let run = |g: usize| {
            parallel_reduce(
                n,
                g,
                0u64,
                |s, e| (s..e).map(|i| i as u64).sum(),
                |a, b| a + b,
            )
        };
        assert_eq!(run(g1), run(g2));
        assert_eq!(run(g1), (0..n as u64).sum::<u64>());
    }
}
