//! Deterministic synthetic sparse-matrix generators.
//!
//! The paper evaluates on UF-collection matrices from several application
//! domains (Table II: structural/FEM problems, undirected graphs, road
//! networks, combinatorial incidence matrices, meshes, quantum chemistry,
//! CFD). These generators produce matrices with the same row-length
//! distributions and shapes, deterministically from a seed, standing in
//! for the proprietary downloads.

pub mod banded;
pub mod block;
pub mod incidence;
pub mod mixture;
pub mod powerlaw;
pub mod random;
pub mod rmat;
pub mod roadnet;

pub use banded::{banded, laplacian_1d, laplacian_2d};
pub use block::block_structured;
pub use incidence::incidence;
pub use mixture::{mixture, RowRegime};
pub use powerlaw::powerlaw;
pub use random::random_uniform;
pub use rmat::rmat;
pub use roadnet::road_network;

use crate::csr::CsrMatrix;
use crate::scalar::Scalar;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Incremental CSR builder: rows are appended in order, so `row_ptr` is
/// monotone by construction.
pub struct RowsBuilder<T> {
    n_cols: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<u32>,
    values: Vec<T>,
}

impl<T: Scalar> RowsBuilder<T> {
    /// Start building a matrix with `n_cols` columns.
    pub fn new(n_cols: usize) -> Self {
        Self {
            n_cols,
            row_ptr: vec![0],
            col_idx: Vec::new(),
            values: Vec::new(),
        }
    }

    /// Pre-allocate for an expected row and non-zero count.
    pub fn with_capacity(n_cols: usize, rows: usize, nnz: usize) -> Self {
        let mut b = Self::new(n_cols);
        b.row_ptr.reserve(rows);
        b.col_idx.reserve(nnz);
        b.values.reserve(nnz);
        b
    }

    /// Append one row given parallel column/value slices. Columns are
    /// sorted and deduplicated (last value wins for duplicates).
    pub fn push_row(&mut self, cols: &[u32], vals: &[T]) {
        debug_assert_eq!(cols.len(), vals.len());
        let mut pairs: Vec<(u32, T)> = cols.iter().copied().zip(vals.iter().copied()).collect();
        pairs.sort_by_key(|&(c, _)| c);
        pairs.dedup_by_key(|&mut (c, _)| c);
        for (c, v) in pairs {
            debug_assert!((c as usize) < self.n_cols);
            self.col_idx.push(c);
            self.values.push(v);
        }
        self.row_ptr.push(self.col_idx.len());
    }

    /// Append one row whose columns are already sorted and unique.
    pub fn push_row_sorted(&mut self, cols: &[u32], vals: &[T]) {
        debug_assert!(cols.windows(2).all(|w| w[0] < w[1]));
        self.col_idx.extend_from_slice(cols);
        self.values.extend_from_slice(vals);
        self.row_ptr.push(self.col_idx.len());
    }

    /// Append an empty row.
    pub fn push_empty_row(&mut self) {
        self.row_ptr.push(self.col_idx.len());
    }

    /// Rows appended so far.
    pub fn rows(&self) -> usize {
        self.row_ptr.len() - 1
    }

    /// Finish and produce the CSR matrix.
    pub fn finish(self) -> CsrMatrix<T> {
        let rows = self.row_ptr.len() - 1;
        CsrMatrix::from_parts_unchecked(rows, self.n_cols, self.row_ptr, self.col_idx, self.values)
    }
}

/// Draw `k` distinct column indices from `[0, n_cols)`, sorted ascending.
///
/// Uses rejection sampling with a scratch sort — efficient for the sparse
/// regime (`k ≪ n_cols`) and exact (falls back to a partial
/// Fisher–Yates when `k` approaches `n_cols`).
pub fn sample_distinct_columns(rng: &mut StdRng, n_cols: usize, k: usize, out: &mut Vec<u32>) {
    out.clear();
    let k = k.min(n_cols);
    if k == 0 {
        return;
    }
    if k * 4 >= n_cols {
        // Dense regime: partial Fisher–Yates over all columns.
        let mut cols: Vec<u32> = (0..n_cols as u32).collect();
        for i in 0..k {
            let j = rng.gen_range(i..n_cols);
            cols.swap(i, j);
        }
        out.extend_from_slice(&cols[..k]);
        out.sort_unstable();
        return;
    }
    // Sparse regime: rejection sampling.
    while out.len() < k {
        let need = k - out.len();
        for _ in 0..need {
            out.push(rng.gen_range(0..n_cols as u32));
        }
        out.sort_unstable();
        out.dedup();
    }
}

/// A deterministic RNG from a 64-bit seed (all generators use this).
pub fn seeded_rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Draw a non-zero value in `[0.1, 1.0]` (bounded away from zero so
/// accumulated sums stay well conditioned in tests).
pub fn gen_value<T: Scalar>(rng: &mut StdRng) -> T {
    T::from_f64(rng.gen_range(0.1..=1.0))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_produces_valid_matrix() {
        let mut b = RowsBuilder::<f64>::new(5);
        b.push_row(&[3, 1], &[30.0, 10.0]);
        b.push_empty_row();
        b.push_row_sorted(&[0, 4], &[1.0, 2.0]);
        let a = b.finish();
        assert_eq!(a.n_rows(), 3);
        assert_eq!(a.nnz(), 4);
        assert!(a.rows_sorted());
        let (cols, vals) = a.row(0);
        assert_eq!(cols, &[1, 3]);
        assert_eq!(vals, &[10.0, 30.0]);
    }

    #[test]
    fn builder_dedups_duplicate_columns() {
        let mut b = RowsBuilder::<f64>::new(4);
        b.push_row(&[2, 2, 1], &[1.0, 2.0, 3.0]);
        let a = b.finish();
        assert_eq!(a.row_nnz(0), 2);
    }

    #[test]
    fn sample_distinct_columns_is_distinct_and_sorted() {
        let mut rng = seeded_rng(7);
        let mut out = Vec::new();
        for &(n, k) in &[(100usize, 10usize), (16, 16), (1000, 3), (8, 6)] {
            sample_distinct_columns(&mut rng, n, k, &mut out);
            assert_eq!(out.len(), k.min(n));
            assert!(out.windows(2).all(|w| w[0] < w[1]));
            assert!(out.iter().all(|&c| (c as usize) < n));
        }
    }

    #[test]
    fn sample_clamps_k_to_n() {
        let mut rng = seeded_rng(1);
        let mut out = Vec::new();
        sample_distinct_columns(&mut rng, 4, 10, &mut out);
        assert_eq!(out, vec![0, 1, 2, 3]);
    }

    #[test]
    fn generators_are_deterministic() {
        let a = random_uniform::<f64>(50, 50, 1, 8, 42);
        let b = random_uniform::<f64>(50, 50, 1, 8, 42);
        assert_eq!(a, b);
        let c = random_uniform::<f64>(50, 50, 1, 8, 43);
        assert_ne!(a, c);
    }
}
