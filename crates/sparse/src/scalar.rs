//! Numeric scalar abstraction so the whole stack works in either `f32`
//! (the paper's OpenCL kernels use `float`) or `f64` (preferred by the
//! iterative-solver examples).

use std::fmt::{Debug, Display};
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub};

/// Floating-point element type of a sparse matrix.
///
/// Implemented for `f32` and `f64`. The associated constants let the
/// simulated GPU charge the correct number of bytes per element and the
/// tests pick sensible comparison tolerances.
pub trait Scalar:
    Copy
    + Send
    + Sync
    + PartialOrd
    + Debug
    + Display
    + Default
    + Add<Output = Self>
    + Sub<Output = Self>
    + Mul<Output = Self>
    + Div<Output = Self>
    + Neg<Output = Self>
    + AddAssign
    + Sum
    + 'static
{
    /// Size of one element in bytes (4 for `f32`, 8 for `f64`).
    const BYTES: usize;
    /// Additive identity.
    const ZERO: Self;
    /// Multiplicative identity.
    const ONE: Self;
    /// A relative tolerance suitable for comparing accumulated dot
    /// products of this precision.
    const TOL: f64;

    /// Lossy conversion from `f64`.
    fn from_f64(x: f64) -> Self;
    /// Widening conversion to `f64`.
    fn to_f64(self) -> f64;
    /// Fused (or at least contracted) multiply-add: `self * a + b`.
    fn mul_add_(self, a: Self, b: Self) -> Self;
    /// Absolute value.
    fn abs_(self) -> Self;
    /// Square root.
    fn sqrt_(self) -> Self;
}

impl Scalar for f32 {
    const BYTES: usize = 4;
    const ZERO: Self = 0.0;
    const ONE: Self = 1.0;
    const TOL: f64 = 1e-4;

    #[inline]
    fn from_f64(x: f64) -> Self {
        x as f32
    }
    #[inline]
    fn to_f64(self) -> f64 {
        self as f64
    }
    #[inline]
    fn mul_add_(self, a: Self, b: Self) -> Self {
        self.mul_add(a, b)
    }
    #[inline]
    fn abs_(self) -> Self {
        self.abs()
    }
    #[inline]
    fn sqrt_(self) -> Self {
        self.sqrt()
    }
}

impl Scalar for f64 {
    const BYTES: usize = 8;
    const ZERO: Self = 0.0;
    const ONE: Self = 1.0;
    const TOL: f64 = 1e-10;

    #[inline]
    fn from_f64(x: f64) -> Self {
        x
    }
    #[inline]
    fn to_f64(self) -> f64 {
        self
    }
    #[inline]
    fn mul_add_(self, a: Self, b: Self) -> Self {
        self.mul_add(a, b)
    }
    #[inline]
    fn abs_(self) -> Self {
        self.abs()
    }
    #[inline]
    fn sqrt_(self) -> Self {
        self.sqrt()
    }
}

/// Compare two accumulated values with a tolerance scaled by the number of
/// accumulated terms, suitable for validating SpMV outputs computed with
/// different summation orders.
pub fn approx_eq<T: Scalar>(a: T, b: T, terms: usize) -> bool {
    let (a, b) = (a.to_f64(), b.to_f64());
    let scale = a.abs().max(b.abs()).max(1.0);
    (a - b).abs() <= T::TOL * scale * (terms.max(1) as f64).sqrt().max(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f32_constants() {
        assert_eq!(<f32 as Scalar>::BYTES, 4);
        assert_eq!(<f32 as Scalar>::ZERO, 0.0f32);
        assert_eq!(<f32 as Scalar>::ONE, 1.0f32);
    }

    #[test]
    fn f64_roundtrip() {
        let x = 1234.5678f64;
        assert_eq!(<f64 as Scalar>::from_f64(x).to_f64(), x);
    }

    #[test]
    fn mul_add_matches_naive() {
        let r = 2.0f64.mul_add_(3.0, 4.0);
        assert_eq!(r, 10.0);
    }

    #[test]
    fn approx_eq_tolerates_summation_order() {
        // Sum of 1e6 values in different orders differs in low bits.
        let a: f32 = (0..1000).map(|i| (i as f32) * 1e-3).sum();
        let b: f32 = (0..1000).rev().map(|i| (i as f32) * 1e-3).sum();
        assert!(approx_eq(a, b, 1000));
        assert!(!approx_eq(1.0f32, 2.0f32, 1));
    }
}
