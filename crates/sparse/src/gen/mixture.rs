//! Mixture-of-regimes matrices: rows drawn from several length regimes
//! interleaved in memory. This is the irregular case the paper's binning
//! motivates (§II-C's 10-row example of 5 short + 5 medium rows), and the
//! workload where per-bin kernel selection wins the most.

use super::{gen_value, sample_distinct_columns, seeded_rng, RowsBuilder};
use crate::csr::CsrMatrix;
use crate::scalar::Scalar;
use rand::Rng;

/// One row-length regime of a mixture matrix.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RowRegime {
    /// Minimum NNZ of rows in this regime.
    pub min_nnz: usize,
    /// Maximum NNZ (inclusive).
    pub max_nnz: usize,
    /// Relative weight (probability mass) of this regime.
    pub weight: f64,
}

impl RowRegime {
    /// Convenience constructor.
    pub fn new(min_nnz: usize, max_nnz: usize, weight: f64) -> Self {
        assert!(min_nnz <= max_nnz && weight > 0.0);
        Self {
            min_nnz,
            max_nnz,
            weight,
        }
    }
}

/// Generate an `m × n` matrix whose rows are independently assigned to one
/// of the `regimes` (probability ∝ weight); each row then draws its NNZ
/// uniformly within the regime. With `shuffle = false` the regimes appear
/// in contiguous stretches (like the paper's §II-C example); with
/// `shuffle = true` they interleave randomly.
pub fn mixture<T: Scalar>(
    m: usize,
    n: usize,
    regimes: &[RowRegime],
    shuffle: bool,
    seed: u64,
) -> CsrMatrix<T> {
    assert!(!regimes.is_empty());
    let mut rng = seeded_rng(seed);
    let total_w: f64 = regimes.iter().map(|r| r.weight).sum();

    // Assign a regime to every row.
    let mut assignment: Vec<usize> = if shuffle {
        (0..m)
            .map(|_| {
                let mut u = rng.gen_range(0.0..total_w);
                for (k, r) in regimes.iter().enumerate() {
                    if u < r.weight {
                        return k;
                    }
                    u -= r.weight;
                }
                regimes.len() - 1
            })
            .collect()
    } else {
        // Contiguous stretches proportional to weight.
        let mut v = Vec::with_capacity(m);
        for (k, r) in regimes.iter().enumerate() {
            let count = ((r.weight / total_w) * m as f64).round() as usize;
            v.extend(std::iter::repeat_n(k, count));
        }
        v.truncate(m);
        while v.len() < m {
            v.push(regimes.len() - 1);
        }
        v
    };
    debug_assert_eq!(assignment.len(), m);

    let mut b = RowsBuilder::with_capacity(n, m, m * 8);
    let mut cols = Vec::new();
    let mut vals = Vec::new();
    for k in assignment.drain(..) {
        let r = &regimes[k];
        let nnz = rng.gen_range(r.min_nnz..=r.max_nnz).min(n);
        sample_distinct_columns(&mut rng, n, nnz, &mut cols);
        vals.clear();
        vals.extend(cols.iter().map(|_| gen_value::<T>(&mut rng)));
        b.push_row_sorted(&cols, &vals);
    }
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contiguous_mixture_reproduces_section2c_example() {
        // 5 short rows (1 nnz) followed by 5 medium rows (9 nnz).
        let regimes = [RowRegime::new(1, 1, 0.5), RowRegime::new(9, 9, 0.5)];
        let a = mixture::<f64>(10, 100, &regimes, false, 1);
        for i in 0..5 {
            assert_eq!(a.row_nnz(i), 1, "row {i}");
        }
        for i in 5..10 {
            assert_eq!(a.row_nnz(i), 9, "row {i}");
        }
    }

    #[test]
    fn shuffled_mixture_interleaves() {
        let regimes = [RowRegime::new(1, 1, 0.5), RowRegime::new(64, 64, 0.5)];
        let a = mixture::<f64>(1000, 2000, &regimes, true, 2);
        let short = (0..1000).filter(|&i| a.row_nnz(i) == 1).count();
        assert!(short > 350 && short < 650, "short = {short}");
        // Interleaved: the first 100 rows should contain both regimes.
        let head_short = (0..100).filter(|&i| a.row_nnz(i) == 1).count();
        assert!(head_short > 10 && head_short < 90);
    }

    #[test]
    fn weights_shape_the_mixture() {
        let regimes = [RowRegime::new(1, 2, 0.9), RowRegime::new(100, 120, 0.1)];
        let a = mixture::<f64>(2000, 4000, &regimes, true, 3);
        let long = (0..2000).filter(|&i| a.row_nnz(i) >= 100).count();
        assert!(long > 100 && long < 320, "long = {long}");
    }
}
