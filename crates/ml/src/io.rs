//! Plain-text persistence for rule-sets.
//!
//! C5.0 ships its classifiers as text files; we do the same so a trained
//! strategy model can be stored in a repository and loaded without
//! retraining (no external serialisation crates needed).
//!
//! Format (line-oriented, versioned):
//!
//! ```text
//! ruleset v1
//! classes <n>
//! attrs <name> <name> …
//! default <class>
//! rule <class> <accuracy> <cond>*      # cond = le:<attr>:<value> |
//! …                                    #        gt:<attr>:<value> |
//! end                                  #        eq:<attr>:<code>
//! ```

use crate::rules::{Cond, Rule, RuleSet};
use std::fmt::Write as _;
use std::io::{BufRead, BufReader, Read, Write};

/// Errors from rule-set (de)serialisation.
#[derive(Debug)]
pub enum RulesIoError {
    /// Malformed input at the given 1-based line.
    Parse(usize, String),
    /// The content parsed but failed static lint checks (see
    /// [`crate::lint`]): the model would panic or silently mispredict at
    /// dispatch time, so loading refuses it.
    Lint(Vec<crate::lint::Finding>),
    /// Underlying I/O failure.
    Io(std::io::Error),
}

impl std::fmt::Display for RulesIoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RulesIoError::Parse(line, msg) => write!(f, "line {line}: {msg}"),
            RulesIoError::Lint(findings) => {
                write!(f, "model failed lint:")?;
                for finding in findings {
                    write!(f, "\n  {finding}")?;
                }
                Ok(())
            }
            RulesIoError::Io(e) => write!(f, "i/o: {e}"),
        }
    }
}

impl std::error::Error for RulesIoError {}

impl From<std::io::Error> for RulesIoError {
    fn from(e: std::io::Error) -> Self {
        RulesIoError::Io(e)
    }
}

/// Serialise a rule-set to the text format.
pub fn write_ruleset<W: Write>(rs: &RuleSet, mut w: W) -> Result<(), RulesIoError> {
    let mut s = String::new();
    let _ = writeln!(s, "ruleset v1");
    let _ = writeln!(s, "classes {}", rs.n_classes());
    let _ = writeln!(s, "attrs {}", rs.attr_names().join(" "));
    let _ = writeln!(s, "default {}", rs.default_class());
    for r in rs.rules() {
        let _ = write!(s, "rule {} {}", r.class, r.accuracy);
        for c in &r.conds {
            match *c {
                Cond::Le(a, v) => {
                    let _ = write!(s, " le:{a}:{v}");
                }
                Cond::Gt(a, v) => {
                    let _ = write!(s, " gt:{a}:{v}");
                }
                Cond::Eq(a, code) => {
                    let _ = write!(s, " eq:{a}:{code}");
                }
            }
        }
        let _ = writeln!(s);
    }
    let _ = writeln!(s, "end");
    w.write_all(s.as_bytes())?;
    Ok(())
}

/// Parse a rule-set from the text format.
pub fn read_ruleset<R: Read>(r: R) -> Result<RuleSet, RulesIoError> {
    let mut lines = BufReader::new(r).lines().enumerate();
    let mut next = || -> Result<(usize, String), RulesIoError> {
        match lines.next() {
            Some((i, l)) => Ok((i + 1, l?)),
            None => Err(RulesIoError::Parse(0, "unexpected end of file".into())),
        }
    };
    let (ln, header) = next()?;
    if header.trim() != "ruleset v1" {
        return Err(RulesIoError::Parse(ln, format!("bad header '{header}'")));
    }
    let (ln, classes) = next()?;
    let n_classes: usize = classes
        .strip_prefix("classes ")
        .and_then(|s| s.trim().parse().ok())
        .ok_or_else(|| RulesIoError::Parse(ln, "bad classes line".into()))?;
    let (ln, attrs_line) = next()?;
    let attr_names: Vec<String> = attrs_line
        .strip_prefix("attrs ")
        .ok_or_else(|| RulesIoError::Parse(ln, "bad attrs line".into()))?
        .split_whitespace()
        .map(str::to_string)
        .collect();
    let (ln, default_line) = next()?;
    let default_class: usize = default_line
        .strip_prefix("default ")
        .and_then(|s| s.trim().parse().ok())
        .ok_or_else(|| RulesIoError::Parse(ln, "bad default line".into()))?;
    if default_class >= n_classes {
        return Err(RulesIoError::Parse(ln, "default class out of range".into()));
    }

    let mut rules = Vec::new();
    loop {
        let (ln, line) = next()?;
        let line = line.trim();
        if line == "end" {
            break;
        }
        let mut toks = line.split_whitespace();
        if toks.next() != Some("rule") {
            return Err(RulesIoError::Parse(
                ln,
                format!("expected rule, got '{line}'"),
            ));
        }
        let class: usize = toks
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| RulesIoError::Parse(ln, "bad rule class".into()))?;
        if class >= n_classes {
            return Err(RulesIoError::Parse(ln, "rule class out of range".into()));
        }
        let accuracy: f64 = toks
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| RulesIoError::Parse(ln, "bad rule accuracy".into()))?;
        let mut conds = Vec::new();
        for tok in toks {
            let mut parts = tok.splitn(3, ':');
            let (op, a, v) = (
                parts.next().unwrap_or(""),
                parts.next().unwrap_or(""),
                parts.next().unwrap_or(""),
            );
            let attr: usize = a
                .parse()
                .map_err(|_| RulesIoError::Parse(ln, format!("bad attr in '{tok}'")))?;
            if attr >= attr_names.len() {
                return Err(RulesIoError::Parse(ln, "attr index out of range".into()));
            }
            let cond = match op {
                "le" => Cond::Le(
                    attr,
                    v.parse()
                        .map_err(|_| RulesIoError::Parse(ln, format!("bad value in '{tok}'")))?,
                ),
                "gt" => Cond::Gt(
                    attr,
                    v.parse()
                        .map_err(|_| RulesIoError::Parse(ln, format!("bad value in '{tok}'")))?,
                ),
                "eq" => Cond::Eq(
                    attr,
                    v.parse()
                        .map_err(|_| RulesIoError::Parse(ln, format!("bad code in '{tok}'")))?,
                ),
                other => {
                    return Err(RulesIoError::Parse(ln, format!("unknown op '{other}'")));
                }
            };
            conds.push(cond);
        }
        rules.push(Rule {
            conds,
            class,
            accuracy,
        });
    }
    Ok(RuleSet::from_parts(
        rules,
        default_class,
        attr_names,
        n_classes,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::{AttrSpec, Dataset};
    use crate::tree::{DecisionTree, TreeConfig};

    fn sample_ruleset() -> RuleSet {
        let mut d = Dataset::new(
            vec![AttrSpec::numeric("x"), AttrSpec::categorical("c", 3)],
            vec!["a".into(), "b".into()],
        );
        for i in 0..60 {
            d.push(&[i as f64, (i % 3) as f64], usize::from(i >= 30));
        }
        let t = DecisionTree::fit(&d, &TreeConfig::default());
        RuleSet::from_tree(&t, &d, 0.25)
    }

    #[test]
    fn roundtrip_preserves_predictions() {
        let rs = sample_ruleset();
        let mut buf = Vec::new();
        write_ruleset(&rs, &mut buf).unwrap();
        let rs2 = read_ruleset(&buf[..]).unwrap();
        for i in 0..80 {
            for c in 0..3 {
                let row = [i as f64, c as f64];
                assert_eq!(rs.predict(&row), rs2.predict(&row), "row {row:?}");
            }
        }
        assert_eq!(rs.default_class(), rs2.default_class());
        assert_eq!(rs.rules().len(), rs2.rules().len());
    }

    #[test]
    fn rejects_bad_header() {
        assert!(read_ruleset("not a ruleset\n".as_bytes()).is_err());
    }

    #[test]
    fn rejects_out_of_range_class() {
        let text = "ruleset v1\nclasses 2\nattrs x\ndefault 5\nend\n";
        assert!(read_ruleset(text.as_bytes()).is_err());
    }

    #[test]
    fn rejects_unknown_op() {
        let text = "ruleset v1\nclasses 2\nattrs x\ndefault 0\nrule 1 0.9 zz:0:1\nend\n";
        assert!(read_ruleset(text.as_bytes()).is_err());
    }

    #[test]
    fn rejects_truncated_file() {
        let text = "ruleset v1\nclasses 2\nattrs x\ndefault 0\nrule 1 0.9\n";
        assert!(read_ruleset(text.as_bytes()).is_err());
    }

    #[test]
    fn empty_ruleset_roundtrips() {
        let text = "ruleset v1\nclasses 3\nattrs a b\ndefault 2\nend\n";
        let rs = read_ruleset(text.as_bytes()).unwrap();
        assert_eq!(rs.predict(&[0.0, 0.0]), 2);
        let mut buf = Vec::new();
        write_ruleset(&rs, &mut buf).unwrap();
        let rs2 = read_ruleset(&buf[..]).unwrap();
        assert_eq!(rs2.default_class(), 2);
    }
}
